//! Native backend: one OS thread per EARTH node.
//!
//! This backend emulates EARTH on the host SMP the way the paper notes
//! EARTH was emulated on off-the-shelf multiprocessors: sync slots are
//! atomic counters, the per-node ready queue is a channel the node's
//! thread blocks on, and split-phase operations are applied when the
//! issuing fiber ends (the SU role is folded into the sender — "gradually
//! replace stock components with specially designed hardware" in the
//! other direction).
//!
//! Accounting methods of [`FiberCtx`] are no-ops here and compile away,
//! so native runs measure real wall-clock behaviour.
//!
//! ## Supervision
//!
//! Every fiber body runs under `catch_unwind`; a panic is captured with
//! its payload, node, slot, and fiber label, the machine is shut down,
//! and the run returns [`RunError::NodePanicked`] instead of hanging on
//! a dead thread's channel. A supervisor loop on the calling thread
//! watches a global progress heartbeat (bumped by every sync landing and
//! every fiber completing); if nothing progresses for
//! [`NativeConfig::watchdog`] while work is still outstanding, the run
//! returns [`RunError::Stalled`] carrying a [`StallDump`] of every
//! pending sync slot, queued message, and per-node fiber state. Threads
//! stuck inside a blocked fiber body are abandoned (they hold no result
//! state the report needs); everything else shuts down cleanly.
//!
//! Fault injection (see [`crate::faults`]) hooks the split-phase
//! delivery path and the fiber dispatch path when
//! [`NativeConfig::faults`] is set; a fault-free run pays nothing.
//!
//! ## Message fabric
//!
//! All inter-node traffic travels on lock-free *lanes*: one
//! [`SpscQueue`] per (sender, receiver) pair (plus one external lane
//! per node for the supervising thread's seed messages). Ready
//! notifications, spawns, GET_SYNC requests, and data deposits are all
//! lane messages; per-lane FIFO plus a drain-all-lanes step before
//! every fiber firing preserves the EARTH guarantee that a fiber's
//! data has landed before its sync fires (see the ordering argument at
//! [`drain_lanes`]). Logical nodes are hosted on up to
//! `available_parallelism()` OS threads (one per node on big hosts;
//! round-robin multiplexed on oversubscribed ones — see
//! [`NativeConfig::host_threads`]). Idle host threads spin briefly (on
//! multi-core hosts) and then park; producers unpark them through a
//! Dekker-style per-node `sleeping` flag. Built entirely on
//! `std::sync` atomics — no external crates, per the workspace's
//! hermetic-build policy (DESIGN.md).

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{fence, AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, RecvTimeoutError};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::faults::{FaultConfig, FaultPlan, FiberFault, MessageFault};
use crate::program::{FiberCtx, FiberSpec, MachineProgram, SlotId};
use crate::spsc::SpscQueue;
use crate::stats::{NodeStats, OpCounts, RunStats};
use crate::value::Value;
use trace::{FaultKind, NullSink, TraceEvent, TraceKind, TraceSink};

/// Map a decided message fate onto the trace-level fault taxonomy.
/// `Deliver` is never passed here (callers only record actual faults).
fn fault_kind(fate: MessageFault) -> FaultKind {
    match fate {
        MessageFault::Delay { .. } => FaultKind::MsgDelay,
        MessageFault::Reorder => FaultKind::MsgReorder,
        MessageFault::Duplicate => FaultKind::MsgDuplicate,
        MessageFault::Drop | MessageFault::Deliver => FaultKind::MsgDrop,
    }
}

/// Why a run was declared stalled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallReason {
    /// Work was outstanding but the progress heartbeat stopped for the
    /// whole watchdog deadline (deadlock, livelock, or a blocked body).
    NoProgress,
    /// The machine went quiescent with fibers still armed — some sync
    /// they were waiting for never arrived (only reported when
    /// [`NativeConfig::starved_is_error`] is set).
    Starved,
    /// The run exceeded [`NativeConfig::deadline`] and was cancelled by
    /// the watchdog supervisor even though it was still making progress.
    /// Serving layers use this for per-job deadlines.
    DeadlineExceeded,
}

impl std::fmt::Display for StallReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StallReason::NoProgress => write!(f, "no progress"),
            StallReason::Starved => write!(f, "starved"),
            StallReason::DeadlineExceeded => write!(f, "deadline exceeded"),
        }
    }
}

/// One armed-but-unfired sync slot in a [`StallDump`].
#[derive(Debug, Clone)]
pub struct PendingSlot {
    pub slot: SlotId,
    /// Fiber label registered at that slot (`"<dynamic>"` for slots
    /// filled by runtime spawns).
    pub fiber: &'static str,
    /// Remaining sync count before the fiber would fire.
    pub remaining: i64,
}

/// Per-node snapshot taken when a run is declared stalled.
#[derive(Debug, Clone)]
pub struct NodeDump {
    pub node: usize,
    /// Whether the node's thread had already exited cleanly.
    pub exited: bool,
    /// Fibers the node fired, when its thread reported back.
    pub fibers_fired: Option<u64>,
    /// Values sitting undelivered in the node's mailbox (`None` if the
    /// mailbox lock was held by a wedged thread).
    pub queued_messages: Option<usize>,
    /// Sync slots still armed (count > 0) on this node.
    pub pending: Vec<PendingSlot>,
}

/// Diagnostic snapshot of the whole machine at stall time.
#[derive(Debug, Clone)]
pub struct StallDump {
    pub nodes: Vec<NodeDump>,
}

impl StallDump {
    /// Total armed-but-unfired sync slots across all nodes.
    pub fn pending_slots(&self) -> usize {
        self.nodes.iter().map(|n| n.pending.len()).sum()
    }

    /// Total undelivered mailbox values across all nodes.
    pub fn queued_messages(&self) -> usize {
        self.nodes.iter().filter_map(|n| n.queued_messages).sum()
    }
}

impl std::fmt::Display for StallDump {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} pending slot(s), {} queued message(s) across {} node(s)",
            self.pending_slots(),
            self.queued_messages(),
            self.nodes.len()
        )?;
        for n in &self.nodes {
            for p in &n.pending {
                write!(
                    f,
                    "; node {} slot {} '{}' waiting on {} sync(s)",
                    n.node, p.slot, p.fiber, p.remaining
                )?;
            }
        }
        Ok(())
    }
}

/// Error from a native run.
#[derive(Debug)]
pub enum RunError {
    /// A fiber body panicked (or a panic was injected by the fault
    /// plan). Carries everything needed to locate the failure.
    NodePanicked {
        node: usize,
        slot: SlotId,
        /// Label of the fiber that was executing.
        fiber: &'static str,
        /// Stringified panic payload.
        message: String,
    },
    /// The machine hung or starved; see [`StallReason`]. The dump lists
    /// every pending sync slot, queued message, and per-node state.
    Stalled {
        reason: StallReason,
        /// How long the supervisor waited before declaring the stall.
        waited: Duration,
        /// Ready-or-running items still outstanding at stall time.
        outstanding: i64,
        dump: StallDump,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::NodePanicked {
                node,
                slot,
                fiber,
                message,
            } => write!(f, "node {node} panicked in fiber '{fiber}' (slot {slot}): {message}"),
            RunError::Stalled {
                reason,
                waited,
                outstanding,
                dump,
            } => write!(
                f,
                "machine stalled ({reason}) after {waited:?} with {outstanding} outstanding item(s): {dump}"
            ),
        }
    }
}

impl std::error::Error for RunError {}

/// Knobs for [`run_native_with`]. The default matches the historical
/// [`run_native`] behaviour plus a generous watchdog.
#[derive(Debug, Clone, Copy)]
pub struct NativeConfig {
    /// Declare [`RunError::Stalled`] after this long without any fiber
    /// completing or sync landing while work is outstanding.
    pub watchdog: Duration,
    /// Optional deterministic fault plan (see [`crate::faults`]).
    pub faults: Option<FaultConfig>,
    /// Treat quiescence with armed-but-unfired fibers as
    /// `Stalled { reason: Starved }` instead of reporting it in
    /// `RunStats::unfired_fibers`. Executors that require every fiber to
    /// fire (the phased reduction) set this.
    pub starved_is_error: bool,
    /// OS threads to host the logical nodes on. `None` (the default)
    /// uses one thread per node when the host has at least that many
    /// cores, and otherwise multiplexes nodes onto
    /// `available_parallelism()` threads — fibers run to completion
    /// (`recv` never blocks), so an event-loop thread can round-robin
    /// several nodes without deadlock, and on an oversubscribed host
    /// that removes the ring handoff's context-switch churn. Ignored
    /// (one thread per node) when a fault plan is active: an injected
    /// stall must pause exactly one node, not everything co-scheduled
    /// with it.
    pub host_threads: Option<usize>,
    /// Hard wall-clock budget for the whole run. Unlike the watchdog —
    /// which only fires when progress *stops* — the deadline cancels a
    /// run that is still healthy but too slow: the supervisor broadcasts
    /// shutdown and returns
    /// [`RunError::Stalled`]`{ reason: `[`StallReason::DeadlineExceeded`]` }`
    /// with a [`StallDump`] of whatever was outstanding. `None` (the
    /// default) means no budget. Serving layers set this per job.
    pub deadline: Option<Duration>,
}

impl Default for NativeConfig {
    fn default() -> Self {
        NativeConfig {
            watchdog: Duration::from_secs(10),
            faults: None,
            starved_is_error: false,
            host_threads: None,
            deadline: None,
        }
    }
}

/// Result of [`run_native`]: final node states plus statistics.
#[derive(Debug)]
pub struct NativeReport<S> {
    /// Final node states, in node order.
    pub states: Vec<S>,
    pub stats: RunStats,
    /// Wall-clock duration of the parallel section (threads running).
    pub wall: Duration,
}

/// A node's fiber table: slot → body (None = free dynamic slot).
type FiberSlots<S> = Vec<Option<FiberSpec<S, NativeCtx<S>>>>;

/// One message on a lane. Shutdown is not a message — it is a shared
/// flag plus an unpark, so any thread may raise it without violating
/// the lanes' single-producer contract.
enum LaneMsg<S> {
    Ready(SlotId),
    Spawn(SlotId, FiberSpec<S, NativeCtx<S>>),
    /// A data payload for the receiver's mailbox under `key`.
    Deposit {
        key: u64,
        value: Value,
    },
    /// GET_SYNC request: evaluate against this node's state and reply.
    Get {
        extract: Box<dyn FnOnce(&S) -> Value + Send>,
        reply_to: usize,
        key: u64,
        slot: SlotId,
    },
}

struct NodeShared<S> {
    counts: Vec<AtomicI64>,
    resets: Vec<AtomicI64>,
    next_dyn: AtomicUsize,
    /// Inbound lanes, one per producer: `lanes[s]` is pushed only by
    /// thread `s`; `lanes[num_nodes]` is the external lane pushed only
    /// by the supervising thread (seeding).
    lanes: Vec<SpscQueue<LaneMsg<S>>>,
    /// Data values deposited but not yet `recv`'d (approximate while
    /// the machine runs; exact at quiescence). Feeds [`NodeDump`].
    inbox_depth: AtomicUsize,
    /// Consumer half of the park protocol: set (SeqCst) by the node
    /// thread just before it re-checks its lanes and parks; cleared by
    /// the producer that wakes it (or by the node itself on wake-up).
    sleeping: AtomicBool,
    /// The node thread's handle, registered when its loop starts, so
    /// producers and the shutdown broadcast can unpark it.
    thread: OnceLock<std::thread::Thread>,
}

/// First fiber failure of the run (first writer wins).
struct Failure {
    node: usize,
    slot: SlotId,
    fiber: &'static str,
    message: String,
}

struct Shared<S> {
    nodes: Vec<NodeShared<S>>,
    /// Raised (with an unpark broadcast) to stop every node thread;
    /// replaces a per-node shutdown message so that *any* thread can
    /// end the run without being a lane producer.
    shutdown: AtomicBool,
    /// Ready notifications queued or executing. When it drops to zero the
    /// machine is quiescent (nothing left that could generate work).
    outstanding: AtomicI64,
    /// Heartbeat for the watchdog: bumped by every landed sync and every
    /// completed fiber. The supervisor only compares successive values.
    progress: AtomicU64,
    failure: Mutex<Option<Failure>>,
    faults: Option<FaultPlan>,
    syncs: AtomicU64,
    messages: AtomicU64,
    local_messages: AtomicU64,
    bytes: AtomicU64,
    spawns: AtomicU64,
    /// Structured event sink; `tracing` caches `sink.enabled()` so the
    /// untraced fast path pays one predictable branch per hook.
    sink: Arc<dyn TraceSink>,
    tracing: bool,
    /// Epoch for event timestamps (monotonic nanoseconds since run
    /// start — the native backend has no cycle clock).
    t0: Instant,
}

impl<S> Shared<S> {
    #[inline]
    fn now(&self) -> u64 {
        self.t0.elapsed().as_nanos() as u64
    }

    /// Record one event stamped with the current monotonic offset.
    #[inline]
    fn record(&self, node: u32, kind: TraceKind) {
        if self.tracing {
            self.sink.record(TraceEvent::new(self.now(), node, kind));
        }
    }

    /// Push `msg` onto `node`'s lane `src` and wake the node if it is
    /// parked. `src` must be the calling thread's lane index (its node
    /// id, or `num_nodes` for the supervising thread).
    #[inline]
    fn push(&self, src: usize, node: usize, msg: LaneMsg<S>) {
        let ns = &self.nodes[node];
        ns.lanes[src].push(msg);
        // Producer half of the park protocol: the SeqCst fence orders
        // the lane publish before the `sleeping` read, pairing with the
        // consumer's store-then-fence-then-recheck. If we read `false`
        // here, the consumer's post-flag lane recheck is guaranteed to
        // observe our push, so no wakeup is lost either way.
        fence(Ordering::SeqCst);
        if ns.sleeping.load(Ordering::Relaxed) && ns.sleeping.swap(false, Ordering::AcqRel) {
            if let Some(t) = ns.thread.get() {
                t.unpark();
            }
        }
    }

    /// Deposit a data payload into `node`'s mailbox via lane `src`.
    #[inline]
    fn push_deposit(&self, src: usize, node: usize, key: u64, value: Value) {
        self.nodes[node].inbox_depth.fetch_add(1, Ordering::Relaxed);
        self.push(src, node, LaneMsg::Deposit { key, value });
    }

    /// Decrement slot `slot` on `node`; enqueue the fiber when it reaches
    /// zero, re-arming repeating fibers. `src` is the calling thread's
    /// lane index.
    fn dec(&self, src: usize, node: usize, slot: SlotId) {
        let ns = &self.nodes[node];
        let old = ns.counts[slot as usize].fetch_sub(1, Ordering::AcqRel);
        self.progress.fetch_add(1, Ordering::Relaxed);
        if old == 1 {
            let reset = ns.resets[slot as usize].load(Ordering::Acquire);
            if reset > 0 {
                // fetch_add (not store) so decrements that raced past zero
                // are preserved in the re-armed count.
                ns.counts[slot as usize].fetch_add(reset, Ordering::AcqRel);
            }
            self.make_ready(src, node, slot);
        }
    }

    fn make_ready(&self, src: usize, node: usize, slot: SlotId) {
        self.outstanding.fetch_add(1, Ordering::AcqRel);
        self.push(src, node, LaneMsg::Ready(slot));
    }

    /// Called when a fiber finishes; returns true if the machine became
    /// quiescent and this caller must broadcast shutdown.
    fn finish_one(&self) -> bool {
        self.outstanding.fetch_sub(1, Ordering::AcqRel) == 1
    }

    fn broadcast_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for ns in &self.nodes {
            if let Some(t) = ns.thread.get() {
                t.unpark();
            }
        }
    }

    /// Record the first fiber failure and shut the machine down.
    fn record_failure(&self, node: usize, slot: SlotId, fiber: &'static str, message: String) {
        let mut f = self.failure.lock().unwrap();
        if f.is_none() {
            *f = Some(Failure {
                node,
                slot,
                fiber,
                message,
            });
        }
        drop(f);
        self.broadcast_shutdown();
    }
}

/// The [`FiberCtx`] implementation for the native backend.
///
/// One context lives per node thread and is reused across firings so
/// the `ops`/`tbuf` allocations amortise; the node's mailbox is lent
/// to it (`mem::take`) around each fiber body so `recv` is a plain
/// local `HashMap` lookup with no locking.
pub struct NativeCtx<S> {
    node: usize,
    num_nodes: usize,
    shared: Arc<Shared<S>>,
    ops: Vec<PendingOp<S>>,
    /// Events the fiber body emitted; flushed (timestamped) when the
    /// fiber retires, like split-phase ops.
    tbuf: Vec<TraceKind>,
    /// The node's mailbox, on loan while a fiber body runs.
    inbox: HashMap<u64, VecDeque<Value>>,
}

enum PendingOp<S> {
    Sync {
        node: usize,
        slot: SlotId,
    },
    Data {
        node: usize,
        key: u64,
        value: Value,
        slot: SlotId,
    },
    Spawn {
        node: usize,
        idx: SlotId,
        spec: FiberSpec<S, NativeCtx<S>>,
    },
    Get {
        node: usize,
        extract: Box<dyn FnOnce(&S) -> Value + Send>,
        key: u64,
        slot: SlotId,
    },
}

impl<S: Send + 'static> FiberCtx<S> for NativeCtx<S> {
    fn node_id(&self) -> usize {
        self.node
    }

    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn trace_enabled(&self) -> bool {
        self.shared.tracing
    }

    fn trace(&mut self, kind: TraceKind) {
        if self.shared.tracing {
            self.tbuf.push(kind);
        }
    }

    fn sync(&mut self, node: usize, slot: SlotId) {
        self.ops.push(PendingOp::Sync { node, slot });
    }

    fn data_sync(&mut self, node: usize, key: u64, value: Value, slot: SlotId) {
        self.ops.push(PendingOp::Data {
            node,
            key,
            value,
            slot,
        });
    }

    fn recv(&mut self, key: u64) -> Option<Value> {
        let q = self.inbox.get_mut(&key)?;
        let v = q.pop_front();
        if q.is_empty() {
            self.inbox.remove(&key);
        }
        if v.is_some() {
            self.shared.nodes[self.node]
                .inbox_depth
                .fetch_sub(1, Ordering::Relaxed);
        }
        v
    }

    fn spawn(&mut self, node: usize, spec: FiberSpec<S, Self>) -> SlotId {
        let ns = &self.shared.nodes[node];
        let idx = ns.next_dyn.fetch_add(1, Ordering::AcqRel);
        assert!(
            idx < ns.counts.len(),
            "node {node} exceeded its dynamic fiber capacity ({}): call reserve_dynamic",
            ns.counts.len()
        );
        // Publish the counter before the spawn message so syncs racing
        // ahead of registration still find a live count.
        ns.counts[idx].store(spec.sync_count as i64, Ordering::Release);
        ns.resets[idx].store(spec.reset.map_or(0, |r| r as i64), Ordering::Release);
        self.ops.push(PendingOp::Spawn {
            node,
            idx: idx as SlotId,
            spec,
        });
        idx as SlotId
    }

    fn get_sync(
        &mut self,
        node: usize,
        extract: Box<dyn FnOnce(&S) -> Value + Send>,
        key: u64,
        slot: SlotId,
    ) {
        self.ops.push(PendingOp::Get {
            node,
            extract,
            key,
            slot,
        });
    }
}

/// Land one sync decrement, routed through the dedup filter when a
/// fault plan is active. `src` is the issuing thread's lane index.
fn deliver_sync<S>(
    shared: &Shared<S>,
    plan: Option<&FaultPlan>,
    src: usize,
    node: usize,
    slot: SlotId,
    dup: bool,
) {
    match plan {
        None => shared.dec(src, node, slot),
        Some(p) => {
            let id = p.next_op_id();
            let times = if dup { 2 } else { 1 };
            for _ in 0..times {
                // A duplicate reuses the id; the filter admits it once.
                if p.first_delivery(id) {
                    shared.dec(src, node, slot);
                }
            }
        }
    }
}

/// Deposit a data payload and land its sync half, dedup-filtered.
///
/// The deposit is pushed before the decrement on the same lane, so the
/// receiver that drains its lanes before firing a ready fiber is
/// guaranteed to have the payload in its mailbox (see [`drain_lanes`]).
#[allow(clippy::too_many_arguments)]
fn deliver_data<S>(
    shared: &Shared<S>,
    plan: Option<&FaultPlan>,
    src: usize,
    node: usize,
    key: u64,
    value: Value,
    slot: SlotId,
    dup: bool,
) {
    match plan {
        None => {
            shared.push_deposit(src, node, key, value);
            shared.dec(src, node, slot);
        }
        Some(p) => {
            let id = p.next_op_id();
            let times = if dup { 2 } else { 1 };
            // A duplicate reuses the id; the filter admits it once, so at
            // most one copy is ever deposited — the payload can be moved,
            // not cloned.
            let mut value = Some(value);
            for _ in 0..times {
                if p.first_delivery(id) {
                    if let Some(v) = value.take() {
                        shared.push_deposit(src, node, key, v);
                        shared.dec(src, node, slot);
                    }
                }
            }
        }
    }
}

/// Flush a retired fiber's buffered split-phase ops. Takes the op
/// buffer by `&mut` and drains it so the allocation is reused across
/// firings.
fn apply_ops<S: Send + 'static>(
    shared: &Arc<Shared<S>>,
    op_src: usize,
    ops: &mut Vec<PendingOp<S>>,
) {
    match shared.faults.as_ref() {
        None => {
            for op in ops.drain(..) {
                dispatch_op(shared, None, op_src, op, MessageFault::Deliver);
            }
        }
        Some(p) => {
            // Decide each message op's fate up front; reordered ops move
            // behind their batch siblings (the only schedule perturbation
            // that cannot lose work — cross-batch order is already
            // unconstrained).
            let mut now = Vec::with_capacity(ops.len());
            let mut later = Vec::new();
            for op in ops.drain(..) {
                let fate = match &op {
                    PendingOp::Sync { node, slot } => p.message_fault(op_src, *node, *slot),
                    PendingOp::Data { node, slot, .. } => p.message_fault(op_src, *node, *slot),
                    _ => MessageFault::Deliver,
                };
                if fate == MessageFault::Reorder {
                    later.push((op, fate));
                } else {
                    now.push((op, fate));
                }
            }
            now.append(&mut later);
            for (op, fate) in now {
                dispatch_op(shared, Some(p), op_src, op, fate);
            }
        }
    }
}

fn dispatch_op<S: Send + 'static>(
    shared: &Arc<Shared<S>>,
    plan: Option<&FaultPlan>,
    op_src: usize,
    op: PendingOp<S>,
    fate: MessageFault,
) {
    if let MessageFault::Delay { micros } = fate {
        // The issuing SU holds the message: modeled network latency.
        std::thread::sleep(Duration::from_micros(micros));
    }
    let dup = fate == MessageFault::Duplicate;
    match op {
        PendingOp::Sync { node, slot } => {
            shared.syncs.fetch_add(1, Ordering::Relaxed);
            if shared.tracing {
                shared.record(
                    op_src as u32,
                    TraceKind::Sync {
                        to_node: node as u32,
                        slot,
                    },
                );
                if fate != MessageFault::Deliver {
                    shared.record(
                        op_src as u32,
                        TraceKind::FaultInjected {
                            kind: fault_kind(fate),
                        },
                    );
                }
            }
            if fate == MessageFault::Drop {
                return;
            }
            deliver_sync(shared, plan, op_src, node, slot, dup);
        }
        PendingOp::Data {
            node,
            key,
            value,
            slot,
        } => {
            shared.messages.fetch_add(1, Ordering::Relaxed);
            let bytes = value.bytes();
            shared.bytes.fetch_add(bytes, Ordering::Relaxed);
            if shared.tracing {
                shared.record(
                    op_src as u32,
                    TraceKind::MsgSend {
                        to_node: node as u32,
                        bytes,
                    },
                );
                if fate != MessageFault::Deliver {
                    shared.record(
                        op_src as u32,
                        TraceKind::FaultInjected {
                            kind: fault_kind(fate),
                        },
                    );
                }
            }
            if fate == MessageFault::Drop {
                return;
            }
            deliver_data(shared, plan, op_src, node, key, value, slot, dup);
            shared.record(
                node as u32,
                TraceKind::MsgRecv {
                    from_node: op_src as u32,
                    bytes,
                },
            );
        }
        PendingOp::Spawn { node, idx, spec } => {
            shared.spawns.fetch_add(1, Ordering::Relaxed);
            let ready_now = spec.sync_count == 0;
            shared.push(op_src, node, LaneMsg::Spawn(idx, spec));
            if ready_now {
                shared.make_ready(op_src, node, idx);
            }
        }
        PendingOp::Get {
            node,
            extract,
            key,
            slot,
        } => {
            // Counted like a ready item so shutdown waits for the
            // round trip to complete.
            shared.outstanding.fetch_add(1, Ordering::AcqRel);
            let reply_to = op_src;
            shared.push(
                op_src,
                node,
                LaneMsg::Get {
                    extract,
                    reply_to,
                    key,
                    slot,
                },
            );
        }
    }
}

/// Stringify a `catch_unwind` payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// What a node thread reports back to the supervisor when it exits.
struct NodeExit<S> {
    node: usize,
    state: S,
    fired: u64,
    never_fired: u64,
}

/// Snapshot the machine for a [`StallDump`].
fn build_dump<S>(
    shared: &Shared<S>,
    names: &[Vec<&'static str>],
    exits: &[Option<NodeExit<S>>],
) -> StallDump {
    let nodes = shared
        .nodes
        .iter()
        .enumerate()
        .map(|(n, ns)| {
            let pending = ns
                .counts
                .iter()
                .enumerate()
                .filter_map(|(i, c)| {
                    let v = c.load(Ordering::Relaxed);
                    if v > 0 {
                        Some(PendingSlot {
                            slot: i as SlotId,
                            fiber: names
                                .get(n)
                                .and_then(|fs| fs.get(i))
                                .copied()
                                .unwrap_or("<dynamic>"),
                            remaining: v,
                        })
                    } else {
                        None
                    }
                })
                .collect();
            let queued_messages = Some(ns.inbox_depth.load(Ordering::Relaxed));
            let exit = exits.get(n).and_then(|e| e.as_ref());
            NodeDump {
                node: n,
                exited: exit.is_some(),
                fibers_fired: exit.map(|e| e.fired),
                queued_messages,
                pending,
            }
        })
        .collect();
    StallDump { nodes }
}

/// Execute `prog` with one OS thread per node and default
/// [`NativeConfig`]. Returns when the machine is quiescent (no ready
/// fibers anywhere and none running).
pub fn run_native<S: Send + 'static>(
    prog: MachineProgram<S, NativeCtx<S>>,
) -> Result<NativeReport<S>, RunError> {
    run_native_with(prog, NativeConfig::default())
}

/// Execute `prog` under explicit supervision knobs (watchdog deadline,
/// fault plan, starvation policy).
pub fn run_native_with<S: Send + 'static>(
    prog: MachineProgram<S, NativeCtx<S>>,
    cfg: NativeConfig,
) -> Result<NativeReport<S>, RunError> {
    run_native_traced(prog, cfg, Arc::new(NullSink))
}

/// Like [`run_native_with`], but records structured [`TraceEvent`]s into
/// `sink` as the machine runs. Timestamps are monotonic nanoseconds from
/// run start (the native backend has no cycle clock), so native streams
/// are *not* deterministic across runs — use the sim backend for
/// byte-reproducible traces. The caller keeps the `Arc` and drains the
/// sink after the run. Passing a disabled sink ([`NullSink`]) makes
/// every hook a single predictable branch.
pub fn run_native_traced<S: Send + 'static>(
    prog: MachineProgram<S, NativeCtx<S>>,
    cfg: NativeConfig,
    sink: Arc<dyn TraceSink>,
) -> Result<NativeReport<S>, RunError> {
    let num_nodes = prog.num_nodes();
    let mut node_shared = Vec::with_capacity(num_nodes);
    let mut node_bodies: Vec<FiberSlots<S>> = Vec::new();
    let mut node_states = Vec::new();
    for nb in prog.nodes {
        let total = nb.fibers.len() + nb.dynamic_capacity;
        let counts: Vec<AtomicI64> = (0..total).map(|_| AtomicI64::new(0)).collect();
        let resets: Vec<AtomicI64> = (0..total).map(|_| AtomicI64::new(0)).collect();
        let mut bodies: FiberSlots<S> = Vec::with_capacity(total);
        for (i, f) in nb.fibers.into_iter().enumerate() {
            counts[i].store(f.sync_count as i64, Ordering::Relaxed);
            resets[i].store(f.reset.map_or(0, |r| r as i64), Ordering::Relaxed);
            bodies.push(Some(f));
        }
        let static_len = bodies.len();
        bodies.resize_with(total, || None);
        node_shared.push(NodeShared {
            counts,
            resets,
            next_dyn: AtomicUsize::new(static_len),
            // One lane per node thread plus the external (seeding) lane.
            lanes: (0..=num_nodes).map(|_| SpscQueue::new()).collect(),
            inbox_depth: AtomicUsize::new(0),
            sleeping: AtomicBool::new(false),
            thread: OnceLock::new(),
        });
        node_bodies.push(bodies);
        node_states.push(nb.state);
    }

    // Fiber labels, snapshotted before the bodies move into node threads
    // so a stall dump can name what it finds.
    let fiber_names: Vec<Vec<&'static str>> = node_bodies
        .iter()
        .map(|bodies| {
            bodies
                .iter()
                .map(|b| b.as_ref().map_or("<dynamic>", |f| f.name))
                .collect()
        })
        .collect();

    let shared = Arc::new(Shared {
        nodes: node_shared,
        shutdown: AtomicBool::new(false),
        outstanding: AtomicI64::new(0),
        progress: AtomicU64::new(0),
        failure: Mutex::new(None),
        faults: cfg.faults.filter(|f| !f.is_noop()).map(FaultPlan::new),
        syncs: AtomicU64::new(0),
        messages: AtomicU64::new(0),
        local_messages: AtomicU64::new(0),
        bytes: AtomicU64::new(0),
        spawns: AtomicU64::new(0),
        tracing: sink.enabled(),
        sink,
        t0: Instant::now(),
    });

    // Seed initially-ready fibers before any thread starts.
    let mut any_ready = false;
    for (n, bodies) in node_bodies.iter().enumerate() {
        for (i, b) in bodies.iter().enumerate() {
            if let Some(spec) = b {
                if spec.sync_count == 0 {
                    // Re-arm repeating fibers before their first firing so
                    // later syncs can trigger them again.
                    if let Some(r) = spec.reset {
                        shared.nodes[n].counts[i].store(r as i64, Ordering::Relaxed);
                    }
                    // The supervising thread seeds through the external lane.
                    shared.make_ready(num_nodes, n, i as SlotId);
                    any_ready = true;
                }
            }
        }
    }

    if !any_ready {
        // Nothing can ever run.
        let unfired = node_bodies
            .iter()
            .map(|b| b.iter().flatten().count())
            .sum::<usize>();
        if cfg.starved_is_error && unfired > 0 {
            let exits: Vec<Option<NodeExit<S>>> = (0..num_nodes).map(|_| None).collect();
            return Err(RunError::Stalled {
                reason: StallReason::Starved,
                waited: Duration::ZERO,
                outstanding: 0,
                dump: build_dump(&shared, &fiber_names, &exits),
            });
        }
        return Ok(NativeReport {
            states: node_states,
            stats: RunStats {
                unfired_fibers: unfired as u64,
                per_node: vec![NodeStats::default(); num_nodes],
                ..Default::default()
            },
            wall: Duration::ZERO,
        });
    }

    // Spin budget while idle before parking: pointless on a single
    // hardware thread (nothing else can run while we spin), cheap
    // insurance against park/unpark latency on real SMPs.
    let spin: u32 = std::thread::available_parallelism()
        .map(|p| if p.get() > 1 { 128 } else { 0 })
        .unwrap_or(0);

    // How many OS threads host the logical nodes (see
    // `NativeConfig::host_threads`). Fault plans pin one node per
    // thread so an injected stall pauses exactly that node.
    let hw = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let os_threads = if shared.faults.is_some() {
        num_nodes
    } else {
        cfg.host_threads.unwrap_or(hw).clamp(1, num_nodes)
    };

    let start = Instant::now();
    let (done_tx, done_rx) = channel::<NodeExit<S>>();

    /// One logical node's run state, bundled so a host thread can own
    /// several nodes and round-robin them as an event loop.
    struct NodeRt<S: Send + 'static> {
        node: usize,
        bodies: FiberSlots<S>,
        state: S,
        ctx: NativeCtx<S>,
        inbox: HashMap<u64, VecDeque<Value>>,
        work: VecDeque<LaneMsg<S>>,
        pending_ready: Vec<SlotId>,
        fired: u64,
        fired_per_fiber: Vec<u64>,
    }

    let mut rts: Vec<NodeRt<S>> = node_bodies
        .into_iter()
        .zip(node_states)
        .enumerate()
        .map(|(node, (bodies, state))| NodeRt {
            node,
            ctx: NativeCtx {
                node,
                num_nodes,
                shared: Arc::clone(&shared),
                ops: Vec::new(),
                tbuf: Vec::new(),
                inbox: HashMap::new(),
            },
            fired_per_fiber: vec![0u64; bodies.len()],
            bodies,
            state,
            inbox: HashMap::new(),
            work: VecDeque::new(),
            pending_ready: Vec::new(),
            fired: 0,
        })
        .collect();

    // Contiguous node→thread chunks keep ring neighbours co-hosted,
    // so most portion handoffs on an oversubscribed host stay on one
    // thread. Split from the back so `split_off` peels each chunk.
    for tid in (0..os_threads).rev() {
        let lo = tid * num_nodes / os_threads;
        let mut group = rts.split_off(lo);
        if group.is_empty() {
            continue;
        }
        let shared = Arc::clone(&shared);
        let done_tx = done_tx.clone();
        // The handle is dropped (thread detached): the supervisor awaits
        // the exit records instead of joining, so a thread wedged inside
        // a blocked fiber body cannot hang the run.
        std::thread::spawn(move || {
            for rt in &group {
                shared.nodes[rt.node]
                    .thread
                    .set(std::thread::current())
                    .expect("node thread registers once");
            }
            // Park events are attributed to the group's first node; a
            // multiplexing thread parks once for all its nodes.
            let lead = group[0].node as u32;
            'run: loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    break;
                }
                let mut any = false;
                for rt in group.iter_mut() {
                    let ns = &shared.nodes[rt.node];
                    drain_lanes(ns, &mut rt.inbox, &mut rt.work);
                    if rt.work.is_empty() {
                        continue;
                    }
                    any = true;
                    while let Some(msg) = rt.work.pop_front() {
                        if shared.shutdown.load(Ordering::Acquire) {
                            break 'run;
                        }
                        match msg {
                            LaneMsg::Deposit { key, value } => {
                                // Normally routed by `drain_lanes`; kept
                                // for totality.
                                rt.inbox.entry(key).or_default().push_back(value);
                            }
                            LaneMsg::Get {
                                extract,
                                reply_to,
                                key,
                                slot,
                            } => {
                                // The node's SU role: service the remote
                                // read against local state, reply, then
                                // retire the outstanding item.
                                let value = extract(&rt.state);
                                shared.messages.fetch_add(1, Ordering::Relaxed);
                                let bytes = value.bytes();
                                shared.bytes.fetch_add(bytes, Ordering::Relaxed);
                                shared.record(
                                    rt.node as u32,
                                    TraceKind::MsgSend {
                                        to_node: reply_to as u32,
                                        bytes,
                                    },
                                );
                                shared.record(
                                    reply_to as u32,
                                    TraceKind::MsgRecv {
                                        from_node: rt.node as u32,
                                        bytes,
                                    },
                                );
                                shared.push_deposit(rt.node, reply_to, key, value);
                                shared.dec(rt.node, reply_to, slot);
                                if shared.finish_one() {
                                    shared.broadcast_shutdown();
                                }
                            }
                            LaneMsg::Spawn(idx, spec) => {
                                if rt.bodies.len() <= idx as usize {
                                    rt.bodies.resize_with(idx as usize + 1, || None);
                                    rt.fired_per_fiber.resize(idx as usize + 1, 0);
                                }
                                rt.bodies[idx as usize] = Some(spec);
                                if let Some(pos) = rt.pending_ready.iter().position(|&p| p == idx) {
                                    rt.pending_ready.swap_remove(pos);
                                    drain_lanes(ns, &mut rt.inbox, &mut rt.work);
                                    if !run_one(
                                        rt.node,
                                        idx,
                                        &mut rt.bodies,
                                        &mut rt.state,
                                        &shared,
                                        &mut rt.ctx,
                                        &mut rt.inbox,
                                        &mut rt.fired,
                                        &mut rt.fired_per_fiber,
                                    ) {
                                        break 'run;
                                    }
                                }
                            }
                            LaneMsg::Ready(idx) => {
                                if rt.bodies.get(idx as usize).is_none_or(|b| b.is_none()) {
                                    // Spawn message not yet processed;
                                    // defer.
                                    rt.pending_ready.push(idx);
                                    continue;
                                }
                                // Pull in every deposit that
                                // happened-before this Ready (see
                                // `drain_lanes`) so the fiber finds its
                                // data on arrival.
                                drain_lanes(ns, &mut rt.inbox, &mut rt.work);
                                if !run_one(
                                    rt.node,
                                    idx,
                                    &mut rt.bodies,
                                    &mut rt.state,
                                    &shared,
                                    &mut rt.ctx,
                                    &mut rt.inbox,
                                    &mut rt.fired,
                                    &mut rt.fired_per_fiber,
                                ) {
                                    break 'run;
                                }
                            }
                        }
                    }
                }
                if any {
                    continue;
                }
                // Idle: spin a little, then arm every owned node's
                // sleeping flag, recheck (the consumer half of the
                // protocol in `Shared::push`, per node), and park once
                // for the whole group.
                let mut idle = true;
                'spin: for _ in 0..spin {
                    std::hint::spin_loop();
                    for rt in group.iter_mut() {
                        drain_lanes(&shared.nodes[rt.node], &mut rt.inbox, &mut rt.work);
                        if !rt.work.is_empty() {
                            idle = false;
                            break 'spin;
                        }
                    }
                }
                if idle {
                    for rt in group.iter() {
                        shared.nodes[rt.node].sleeping.store(true, Ordering::SeqCst);
                    }
                    fence(Ordering::SeqCst);
                    let mut have = false;
                    for rt in group.iter_mut() {
                        drain_lanes(&shared.nodes[rt.node], &mut rt.inbox, &mut rt.work);
                        if !rt.work.is_empty() {
                            have = true;
                        }
                    }
                    if !have && !shared.shutdown.load(Ordering::SeqCst) {
                        let parked = Instant::now();
                        shared.record(lead, TraceKind::NodeParked);
                        // The timeout is pure insurance: correctness
                        // relies on the flag protocol, not on it.
                        std::thread::park_timeout(Duration::from_millis(10));
                        shared.record(
                            lead,
                            TraceKind::NodeUnparked {
                                parked_ns: parked.elapsed().as_nanos() as u64,
                            },
                        );
                    }
                    for rt in group.iter() {
                        shared.nodes[rt.node]
                            .sleeping
                            .store(false, Ordering::SeqCst);
                    }
                }
            }
            for rt in group {
                let never_fired = rt
                    .bodies
                    .iter()
                    .zip(rt.fired_per_fiber.iter())
                    .filter(|(b, &f)| b.is_some() && f == 0)
                    .count() as u64;
                let _ = done_tx.send(NodeExit {
                    node: rt.node,
                    state: rt.state,
                    fired: rt.fired,
                    never_fired,
                });
            }
        });
    }
    drop(done_tx);

    /// Move everything queued on `ns`'s lanes into the node-local state:
    /// deposits into the mailbox, everything else onto the work queue.
    ///
    /// Calling this immediately before firing a ready fiber is what
    /// keeps EARTH's data-before-sync guarantee on lock-free lanes: a
    /// sender pushes its deposit (Release) *before* its sync decrement
    /// (AcqRel RMW), the RMW chain on the sync counter carries that
    /// edge to whichever thread performs the final decrement, and that
    /// thread's Ready push (Release) is what the consumer popped
    /// (Acquire) to get here — so every deposit ordered before the
    /// firing is already visible on some lane, whatever thread sent it.
    fn drain_lanes<S>(
        ns: &NodeShared<S>,
        inbox: &mut HashMap<u64, VecDeque<Value>>,
        work: &mut VecDeque<LaneMsg<S>>,
    ) {
        for lane in &ns.lanes {
            while let Some(msg) = lane.pop() {
                match msg {
                    LaneMsg::Deposit { key, value } => {
                        inbox.entry(key).or_default().push_back(value);
                    }
                    other => work.push_back(other),
                }
            }
        }
    }

    /// Run one ready fiber under supervision. Returns false when the
    /// firing failed (panic, injected or real) and the node must stop.
    #[allow(clippy::too_many_arguments)]
    fn run_one<S: Send + 'static>(
        node: usize,
        idx: SlotId,
        bodies: &mut [Option<FiberSpec<S, NativeCtx<S>>>],
        state: &mut S,
        shared: &Arc<Shared<S>>,
        ctx: &mut NativeCtx<S>,
        inbox: &mut HashMap<u64, VecDeque<Value>>,
        fired: &mut u64,
        fired_per_fiber: &mut [u64],
    ) -> bool {
        // Take the body out so the fiber may (indirectly) reference the
        // body table through spawns without aliasing.
        let mut spec = bodies[idx as usize].take().expect("ready fiber has a body");
        if let Some(plan) = &shared.faults {
            match plan.fiber_fault(node, idx) {
                FiberFault::Run => {}
                FiberFault::Stall { micros } => {
                    // The whole node pauses: no fiber on it can run and
                    // nothing it would send goes out.
                    std::thread::sleep(Duration::from_micros(micros));
                }
                FiberFault::Panic => {
                    let name = spec.name;
                    bodies[idx as usize] = Some(spec);
                    shared.record_failure(
                        node,
                        idx,
                        name,
                        "injected fiber panic (fault plan)".to_string(),
                    );
                    return false;
                }
            }
        }
        // Lend the mailbox to the context for the body's `recv` calls.
        ctx.inbox = std::mem::take(inbox);
        let fire_ts = if shared.tracing { shared.now() } else { 0 };
        let outcome = catch_unwind(AssertUnwindSafe(|| (spec.body)(state, ctx)));
        let name = spec.name;
        bodies[idx as usize] = Some(spec);
        *inbox = std::mem::take(&mut ctx.inbox);
        match outcome {
            Ok(()) => {
                *fired += 1;
                fired_per_fiber[idx as usize] += 1;
                if shared.tracing {
                    let end = shared.now();
                    shared.sink.record(TraceEvent::new(
                        fire_ts,
                        node as u32,
                        TraceKind::FiberFire { slot: idx },
                    ));
                    for kind in ctx.tbuf.drain(..) {
                        shared.sink.record(TraceEvent::new(end, node as u32, kind));
                    }
                    shared.sink.record(TraceEvent::new(
                        end,
                        node as u32,
                        TraceKind::FiberRetire {
                            slot: idx,
                            exec: end - fire_ts,
                        },
                    ));
                }
                apply_ops(shared, node, &mut ctx.ops);
                shared.progress.fetch_add(1, Ordering::Relaxed);
                if shared.finish_one() {
                    shared.broadcast_shutdown();
                }
                true
            }
            Err(payload) => {
                // Discard the fiber's buffered split-phase ops: a crashed
                // fiber sent nothing.
                ctx.ops.clear();
                ctx.tbuf.clear();
                shared.record_failure(node, idx, name, panic_message(payload));
                false
            }
        }
    }

    // Supervisor: collect exit records with a no-progress watchdog
    // instead of joining threads (a join on a wedged thread never
    // returns).
    let mut exits: Vec<Option<NodeExit<S>>> = (0..num_nodes).map(|_| None).collect();
    let mut received = 0usize;
    // The supervisor tick must be fine enough to notice both watchdog
    // stalls and deadline expiry promptly.
    let probe = cfg.deadline.map_or(cfg.watchdog, |d| d.min(cfg.watchdog));
    let tick = (probe / 8).clamp(Duration::from_millis(2), Duration::from_millis(250));
    let mut last_progress = shared.progress.load(Ordering::Relaxed);
    let mut last_change = Instant::now();
    let mut stalled = false;
    let mut deadline_hit = false;
    while received < num_nodes {
        // Deadline enforcement is progress-independent: a run that is
        // healthy but over budget is cancelled just like a wedged one,
        // through the same shutdown broadcast.
        if let Some(d) = cfg.deadline {
            if start.elapsed() >= d {
                stalled = true;
                deadline_hit = true;
                shared.broadcast_shutdown();
                break;
            }
        }
        match done_rx.recv_timeout(tick) {
            Ok(ex) => {
                let n = ex.node;
                exits[n] = Some(ex);
                received += 1;
                last_change = Instant::now();
            }
            Err(RecvTimeoutError::Timeout) => {
                if shared.failure.lock().unwrap().is_some() {
                    // A fiber failed; shutdown is in flight. Stop waiting
                    // for full quiescence and go drain what exits remain.
                    break;
                }
                let p = shared.progress.load(Ordering::Relaxed);
                // Each supervisor tick leaves a heartbeat in the trace,
                // so a post-mortem timeline shows where progress stopped.
                shared.record(
                    trace::RUN_NODE,
                    TraceKind::WatchdogHeartbeat { progress: p },
                );
                if p != last_progress {
                    last_progress = p;
                    last_change = Instant::now();
                } else if last_change.elapsed() >= cfg.watchdog {
                    stalled = true;
                    shared.broadcast_shutdown();
                    break;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    // Grace drain: give healthy nodes a moment to deliver their exit
    // records after a shutdown broadcast; wedged ones are abandoned.
    if received < num_nodes {
        let grace_deadline = Instant::now() + tick.max(Duration::from_millis(50)) * 4;
        while received < num_nodes {
            let now = Instant::now();
            if now >= grace_deadline {
                break;
            }
            match done_rx.recv_timeout(grace_deadline - now) {
                Ok(ex) => {
                    let n = ex.node;
                    exits[n] = Some(ex);
                    received += 1;
                }
                Err(_) => break,
            }
        }
    }
    let wall = start.elapsed();

    if let Some(f) = shared.failure.lock().unwrap().take() {
        return Err(RunError::NodePanicked {
            node: f.node,
            slot: f.slot,
            fiber: f.fiber,
            message: f.message,
        });
    }
    if stalled {
        return Err(RunError::Stalled {
            reason: if deadline_hit {
                StallReason::DeadlineExceeded
            } else {
                StallReason::NoProgress
            },
            waited: if deadline_hit { wall } else { cfg.watchdog },
            outstanding: shared.outstanding.load(Ordering::Relaxed),
            dump: build_dump(&shared, &fiber_names, &exits),
        });
    }
    if received < num_nodes {
        // A node thread died without reporting and without recording a
        // failure: a runtime bug, not a fiber panic.
        let node = exits.iter().position(|e| e.is_none()).unwrap_or(0);
        return Err(RunError::NodePanicked {
            node,
            slot: 0,
            fiber: "<runtime>",
            message: "node thread terminated without reporting".to_string(),
        });
    }

    let mut states = Vec::with_capacity(num_nodes);
    let mut per_node = Vec::with_capacity(num_nodes);
    let mut total_fired = 0u64;
    let mut unfired = 0u64;
    for ex in exits.into_iter().flatten() {
        total_fired += ex.fired;
        unfired += ex.never_fired;
        per_node.push(NodeStats {
            fibers_fired: ex.fired,
            ..Default::default()
        });
        states.push(ex.state);
    }

    if cfg.starved_is_error && unfired > 0 {
        let exits: Vec<Option<NodeExit<S>>> = (0..num_nodes).map(|_| None).collect();
        return Err(RunError::Stalled {
            reason: StallReason::Starved,
            waited: wall,
            outstanding: shared.outstanding.load(Ordering::Relaxed),
            dump: build_dump(&shared, &fiber_names, &exits),
        });
    }

    let messages = shared.messages.load(Ordering::Relaxed);
    Ok(NativeReport {
        states,
        stats: RunStats {
            ops: OpCounts {
                fibers_fired: total_fired,
                syncs: shared.syncs.load(Ordering::Relaxed),
                messages,
                bytes: shared.bytes.load(Ordering::Relaxed),
                local_messages: shared.local_messages.load(Ordering::Relaxed),
                spawns: shared.spawns.load(Ordering::Relaxed),
            },
            unfired_fibers: unfired,
            total_cycles: 0,
            per_node,
            faults: shared
                .faults
                .as_ref()
                .map(|p| p.counts())
                .unwrap_or_default(),
        },
        wall,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::FiberSpec;
    use crate::value::mailbox_key;

    type Prog<S> = MachineProgram<S, NativeCtx<S>>;

    #[test]
    fn single_ready_fiber_runs() {
        let mut prog: Prog<u32> = MachineProgram::new();
        let n = prog.add_node(0);
        prog.node_mut(n)
            .add_fiber(FiberSpec::ready("inc", |s, _cx| *s += 1));
        let r = run_native(prog).unwrap();
        assert_eq!(r.states[0], 1);
        assert_eq!(r.stats.ops.fibers_fired, 1);
        assert_eq!(r.stats.unfired_fibers, 0);
        assert_eq!(r.stats.faults, crate::faults::FaultCounts::default());
    }

    #[test]
    fn sync_chain_across_nodes() {
        // node 0 fiber syncs node 1's fiber, which syncs node 2's.
        let mut prog: Prog<u32> = MachineProgram::new();
        for _ in 0..3 {
            prog.add_node(0);
        }
        prog.node_mut(0)
            .add_fiber(FiberSpec::ready("a", |s, cx: &mut NativeCtx<u32>| {
                *s = 10;
                cx.sync(1, 0);
            }));
        prog.node_mut(1)
            .add_fiber(FiberSpec::new("b", 1, |s, cx: &mut NativeCtx<u32>| {
                *s = 20;
                cx.sync(2, 0);
            }));
        prog.node_mut(2)
            .add_fiber(FiberSpec::new("c", 1, |s, _cx| *s = 30));
        let r = run_native(prog).unwrap();
        assert_eq!(r.states, vec![10, 20, 30]);
        assert_eq!(r.stats.ops.syncs, 2);
    }

    #[test]
    fn data_sync_delivers_payload() {
        let mut prog: Prog<Vec<f64>> = MachineProgram::new();
        prog.add_node(vec![1.0, 2.0, 3.0]);
        prog.add_node(Vec::new());
        prog.node_mut(0).add_fiber(FiberSpec::ready(
            "send",
            |s: &mut Vec<f64>, cx: &mut NativeCtx<Vec<f64>>| {
                cx.data_sync(1, mailbox_key(1, 0), Value::from(s.clone()), 0);
            },
        ));
        prog.node_mut(1).add_fiber(FiberSpec::new(
            "recv",
            1,
            |s: &mut Vec<f64>, cx: &mut NativeCtx<Vec<f64>>| {
                let v = cx.recv(mailbox_key(1, 0)).expect("payload present");
                *s = v.expect_f64s().to_vec();
            },
        ));
        let r = run_native(prog).unwrap();
        assert_eq!(r.states[1], vec![1.0, 2.0, 3.0]);
        assert_eq!(r.stats.ops.messages, 1);
        assert_eq!(r.stats.ops.bytes, 24);
    }

    #[test]
    fn fan_in_sync_count() {
        // One fiber waits for syncs from 4 producers.
        const P: usize = 4;
        let mut prog: Prog<u64> = MachineProgram::new();
        for _ in 0..P + 1 {
            prog.add_node(0);
        }
        for p in 0..P {
            prog.node_mut(p).add_fiber(FiberSpec::ready(
                "producer",
                move |_s, cx: &mut NativeCtx<u64>| {
                    cx.data_sync(P, mailbox_key(9, 0), Value::Scalar(1.0), 0);
                },
            ));
        }
        prog.node_mut(P).add_fiber(FiberSpec::new(
            "consumer",
            P as u32,
            move |s, cx: &mut NativeCtx<u64>| {
                while let Some(v) = cx.recv(mailbox_key(9, 0)) {
                    *s += v.expect_scalar() as u64;
                }
            },
        ));
        let r = run_native(prog).unwrap();
        assert_eq!(r.states[P], P as u64);
    }

    #[test]
    fn repeating_fiber_fires_multiple_times() {
        // A ping-pong between two repeating fibers, 5 rounds.
        let mut prog: Prog<u32> = MachineProgram::new();
        prog.add_node(0);
        prog.add_node(0);
        prog.node_mut(0).add_fiber(FiberSpec::repeating(
            "ping",
            0,
            1,
            |s, cx: &mut NativeCtx<u32>| {
                *s += 1;
                if *s < 5 {
                    cx.sync(1, 0);
                }
            },
        ));
        prog.node_mut(1).add_fiber(FiberSpec::repeating(
            "pong",
            1,
            1,
            |s, cx: &mut NativeCtx<u32>| {
                *s += 1;
                cx.sync(0, 0);
            },
        ));
        let r = run_native(prog).unwrap();
        assert_eq!(r.states[0], 5);
        assert_eq!(r.states[1], 4);
    }

    #[test]
    fn dynamic_spawn_runs_on_remote_node() {
        let mut prog: Prog<i64> = MachineProgram::new();
        prog.add_node(0);
        prog.add_node(0);
        prog.node_mut(1).reserve_dynamic(1);
        prog.node_mut(0).add_fiber(FiberSpec::ready(
            "invoker",
            |_s, cx: &mut NativeCtx<i64>| {
                cx.spawn(1, FiberSpec::ready("worker", |s: &mut i64, _cx| *s = 42));
            },
        ));
        let r = run_native(prog).unwrap();
        assert_eq!(r.states[1], 42);
        assert_eq!(r.stats.ops.spawns, 1);
    }

    #[test]
    fn spawned_fiber_with_pending_syncs() {
        // The spawner also syncs the spawned fiber (count 2: one sync from
        // each of two nodes). Exercises the publish-before-send path.
        let mut prog: Prog<i64> = MachineProgram::new();
        prog.add_node(0);
        prog.add_node(0);
        prog.add_node(0);
        prog.node_mut(2).reserve_dynamic(1);
        prog.node_mut(0).add_fiber(FiberSpec::ready(
            "spawner",
            |_s, cx: &mut NativeCtx<i64>| {
                let slot = cx.spawn(2, FiberSpec::new("gated", 2, |s: &mut i64, _cx| *s = 7));
                cx.sync(2, slot);
                cx.sync(1, 0); // tell node 1 to send the second sync
            },
        ));
        prog.node_mut(1).add_fiber(FiberSpec::new(
            "second",
            1,
            |_s, cx: &mut NativeCtx<i64>| {
                // The dynamic fiber is the first dynamic slot on node 2,
                // i.e. index = #static fibers there = 0.
                cx.sync(2, 0);
            },
        ));
        let r = run_native(prog).unwrap();
        assert_eq!(r.states[2], 7);
    }

    #[test]
    fn get_sync_round_trip_native() {
        let mut prog: Prog<f64> = MachineProgram::new();
        prog.add_node(0.0);
        prog.add_node(21.0);
        prog.node_mut(0)
            .add_fiber(FiberSpec::ready("ask", |_s, cx: &mut NativeCtx<f64>| {
                cx.get_sync(1, Box::new(|s: &f64| Value::Scalar(*s)), 9, 1);
            }));
        prog.node_mut(0).add_fiber(FiberSpec::new(
            "use",
            1,
            |s: &mut f64, cx: &mut NativeCtx<f64>| {
                *s = cx.recv(9).unwrap().expect_scalar() * 2.0;
            },
        ));
        let r = run_native(prog).unwrap();
        assert_eq!(r.states[0], 42.0);
        assert_eq!(r.states[1], 21.0, "remote state untouched");
    }

    #[test]
    fn get_sync_chain_native() {
        // A chain of gets: 0 reads 1, then 0 reads 2, accumulating.
        let mut prog: Prog<i64> = MachineProgram::new();
        prog.add_node(0);
        prog.add_node(10);
        prog.add_node(32);
        prog.node_mut(0)
            .add_fiber(FiberSpec::ready("ask1", |_s, cx: &mut NativeCtx<i64>| {
                cx.get_sync(1, Box::new(|s: &i64| Value::Int(*s)), 1, 1);
            }));
        prog.node_mut(0).add_fiber(FiberSpec::new(
            "ask2",
            1,
            |s: &mut i64, cx: &mut NativeCtx<i64>| {
                *s += cx.recv(1).unwrap().expect_int();
                cx.get_sync(2, Box::new(|s: &i64| Value::Int(*s)), 2, 2);
            },
        ));
        prog.node_mut(0).add_fiber(FiberSpec::new(
            "sum",
            1,
            |s: &mut i64, cx: &mut NativeCtx<i64>| {
                *s += cx.recv(2).unwrap().expect_int();
            },
        ));
        let r = run_native(prog).unwrap();
        assert_eq!(r.states[0], 42);
    }

    #[test]
    fn unfired_fibers_reported() {
        let mut prog: Prog<u32> = MachineProgram::new();
        prog.add_node(0);
        prog.node_mut(0)
            .add_fiber(FiberSpec::ready("runs", |s, _cx| *s += 1));
        prog.node_mut(0)
            .add_fiber(FiberSpec::new("never", 3, |s, _cx| *s += 100));
        let r = run_native(prog).unwrap();
        assert_eq!(r.states[0], 1);
        assert_eq!(r.stats.unfired_fibers, 1);
    }

    #[test]
    fn starved_is_error_turns_unfired_into_stall() {
        let mut prog: Prog<u32> = MachineProgram::new();
        prog.add_node(0);
        prog.node_mut(0)
            .add_fiber(FiberSpec::ready("runs", |s, _cx| *s += 1));
        prog.node_mut(0)
            .add_fiber(FiberSpec::new("never", 3, |s, _cx| *s += 100));
        let cfg = NativeConfig {
            starved_is_error: true,
            ..NativeConfig::default()
        };
        match run_native_with(prog, cfg) {
            Err(RunError::Stalled { reason, dump, .. }) => {
                assert_eq!(reason, StallReason::Starved);
                assert_eq!(dump.pending_slots(), 1);
                assert_eq!(dump.nodes[0].pending[0].fiber, "never");
                assert_eq!(dump.nodes[0].pending[0].remaining, 3);
            }
            other => panic!("expected Stalled(Starved), got {other:?}"),
        }
    }

    #[test]
    fn deadline_cancels_healthy_but_slow_run() {
        // A chain of fibers that each sleep briefly: the machine makes
        // steady progress (the watchdog never fires) but blows a short
        // wall-clock budget, so the supervisor cancels it.
        let mut prog: Prog<u32> = MachineProgram::new();
        prog.add_node(0);
        const STEPS: u32 = 100;
        prog.node_mut(0).add_fiber(FiberSpec::ready(
            "step",
            |s: &mut u32, cx: &mut NativeCtx<u32>| {
                std::thread::sleep(Duration::from_millis(10));
                *s += 1;
                cx.data_sync(0, 100u64, Value::Int(1), 1);
            },
        ));
        for i in 1..STEPS {
            prog.node_mut(0).add_fiber(FiberSpec::new(
                "step",
                1,
                move |s: &mut u32, cx: &mut NativeCtx<u32>| {
                    let _ = cx.recv(u64::from(100 + i - 1));
                    std::thread::sleep(Duration::from_millis(10));
                    *s += 1;
                    if i + 1 < STEPS {
                        cx.data_sync(0, u64::from(100 + i), Value::Int(1), i + 1);
                    }
                },
            ));
        }
        let cfg = NativeConfig {
            deadline: Some(Duration::from_millis(120)),
            ..NativeConfig::default()
        };
        let begun = Instant::now();
        match run_native_with(prog, cfg) {
            Err(RunError::Stalled { reason, .. }) => {
                assert_eq!(reason, StallReason::DeadlineExceeded);
            }
            other => panic!("expected Stalled(DeadlineExceeded), got {other:?}"),
        }
        assert!(
            begun.elapsed() < Duration::from_millis(700),
            "cancel came promptly, not at run completion ({:?})",
            begun.elapsed()
        );
    }

    #[test]
    fn generous_deadline_does_not_cancel() {
        let mut prog: Prog<u32> = MachineProgram::new();
        prog.add_node(0);
        prog.node_mut(0)
            .add_fiber(FiberSpec::ready("runs", |s, _cx| *s += 1));
        let cfg = NativeConfig {
            deadline: Some(Duration::from_secs(30)),
            ..NativeConfig::default()
        };
        let r = run_native_with(prog, cfg).unwrap();
        assert_eq!(r.states[0], 1);
    }

    #[test]
    fn traced_native_run_records_events() {
        let mut prog: Prog<u32> = MachineProgram::new();
        prog.add_node(0);
        prog.add_node(0);
        prog.node_mut(0)
            .add_fiber(FiberSpec::ready("a", |s, cx: &mut NativeCtx<u32>| {
                *s = 1;
                cx.trace(TraceKind::PhaseEnter { sweep: 0, phase: 0 });
                cx.data_sync(1, mailbox_key(3, 0), Value::Scalar(2.0), 0);
            }));
        prog.node_mut(1)
            .add_fiber(FiberSpec::new("b", 1, |s, cx: &mut NativeCtx<u32>| {
                *s = cx.recv(mailbox_key(3, 0)).unwrap().expect_scalar() as u32;
            }));
        let sink = Arc::new(trace::RingSink::new(2, 64));
        let r = run_native_traced(
            prog,
            NativeConfig::default(),
            sink.clone() as Arc<dyn TraceSink>,
        )
        .unwrap();
        assert_eq!(r.states, vec![1, 2]);
        assert_eq!(r.stats.total_cycles, 0, "native has no cycle clock");
        let events = sink.drain();
        let fires = events
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::FiberFire { .. }))
            .count();
        let retires = events
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::FiberRetire { .. }))
            .count();
        assert_eq!(fires, 2);
        assert_eq!(retires, 2);
        assert!(events
            .iter()
            .any(|e| e.node == 0 && e.kind == (TraceKind::PhaseEnter { sweep: 0, phase: 0 })));
        assert!(events.iter().any(|e| matches!(
            e.kind,
            TraceKind::MsgSend {
                to_node: 1,
                bytes: 8
            }
        )));
        assert!(events.iter().any(|e| e.node == 1
            && matches!(
                e.kind,
                TraceKind::MsgRecv {
                    from_node: 0,
                    bytes: 8
                }
            )));
    }

    #[test]
    fn untraced_native_run_records_nothing() {
        let mut prog: Prog<u32> = MachineProgram::new();
        prog.add_node(0);
        prog.node_mut(0)
            .add_fiber(FiberSpec::ready("inc", |s, _cx| *s += 1));
        // run_native goes through the NullSink path; nothing to drain and
        // the run still completes.
        let r = run_native(prog).unwrap();
        assert_eq!(r.states[0], 1);
    }

    #[test]
    fn empty_program_terminates() {
        let mut prog: Prog<()> = MachineProgram::new();
        prog.add_node(());
        let r = run_native(prog).unwrap();
        assert_eq!(r.stats.ops.fibers_fired, 0);
    }

    #[test]
    fn many_nodes_stress() {
        // A ring: each node syncs the next; last one flips its state.
        const N: usize = 16;
        let mut prog: Prog<u64> = MachineProgram::new();
        for _ in 0..N {
            prog.add_node(0);
        }
        prog.node_mut(0)
            .add_fiber(FiberSpec::ready("start", |s, cx: &mut NativeCtx<u64>| {
                *s = 1;
                cx.sync(1 % N, 0);
            }));
        for n in 1..N {
            prog.node_mut(n).add_fiber(FiberSpec::new(
                "hop",
                1,
                move |s, cx: &mut NativeCtx<u64>| {
                    *s = n as u64 + 1;
                    if n + 1 < N {
                        cx.sync(n + 1, 0);
                    }
                },
            ));
        }
        let r = run_native(prog).unwrap();
        for (n, s) in r.states.iter().enumerate() {
            assert_eq!(*s, n as u64 + 1);
        }
    }
}
