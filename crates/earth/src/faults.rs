//! Deterministic fault injection for both EARTH backends.
//!
//! The paper's central robustness claim is that phased execution is
//! *schedule-independent*: the `k·P` portion transfers of one sweep may
//! land in any order without changing the reduction result (PAPER.md
//! §2.2). A [`FaultPlan`] turns that claim into something testable — it
//! lets either backend perturb message delivery (delay, reorder,
//! duplicate, drop) and fiber execution (injected panic, stalled node)
//! at configurable rates while staying *replayable*: every decision is a
//! pure function of the plan seed, the fault site, and a per-site
//! occurrence counter, hashed through [`harness::rng::splitmix64`].
//! Re-running with the same seed injects the same faults at the same
//! sites, even though native thread interleavings differ run to run.
//!
//! Fault taxonomy (see DESIGN.md §8):
//!
//! * **Delay** — the message is delivered late (native: the issuing SU
//!   sleeps; sim: extra network latency cycles). Never changes results.
//! * **Reorder** — the message is moved behind the other split-phase
//!   operations of the same fiber ending (native), or delayed past its
//!   batch siblings (sim). Never loses a message.
//! * **Duplicate** — the message is delivered twice *with the same
//!   operation id*; the backend's dedup filter must suppress the copy.
//! * **Drop** — the message is never delivered. This is the only
//!   destructive message fault: the victim fiber starves and the run
//!   must end in a structured [`RunError`](crate::native::RunError),
//!   never a hang.
//! * **Panic** — a fiber firing is replaced by a modeled crash,
//!   surfacing as `RunError::NodePanicked` (native only).
//! * **Stall** — the node pauses before running a fiber, exercising the
//!   no-progress watchdog (native only).

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use harness::rng::splitmix64;

/// Rates and bounds for injected faults. `Copy` so it can ride inside
/// [`SimConfig`](crate::sim::SimConfig); the stateful counters live in
/// the [`FaultPlan`] built from it at run start.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed for all fault decisions. Same seed ⇒ same faults.
    pub seed: u64,
    /// Probability a sync/data message is delivered late.
    pub delay_prob: f64,
    /// Upper bound on an injected delay, in microseconds.
    pub max_delay_us: u64,
    /// Probability a message is reordered behind its batch siblings.
    pub reorder_prob: f64,
    /// Probability a message is delivered twice (same operation id).
    pub duplicate_prob: f64,
    /// Probability a message is dropped entirely (destructive).
    pub drop_prob: f64,
    /// Probability a fiber firing is replaced by a modeled panic.
    pub panic_prob: f64,
    /// Probability the node pauses before running a fiber.
    pub stall_prob: f64,
    /// Upper bound on an injected stall, in microseconds.
    pub max_stall_us: u64,
}

impl FaultConfig {
    /// No faults at all — the identity plan (useful as a baseline arm).
    pub fn none(seed: u64) -> Self {
        FaultConfig {
            seed,
            delay_prob: 0.0,
            max_delay_us: 0,
            reorder_prob: 0.0,
            duplicate_prob: 0.0,
            drop_prob: 0.0,
            panic_prob: 0.0,
            stall_prob: 0.0,
            max_stall_us: 0,
        }
    }

    /// Non-destructive message faults only (delay/reorder/duplicate).
    /// A run under this plan must complete bit-identical to fault-free.
    pub fn lossless(seed: u64) -> Self {
        FaultConfig {
            delay_prob: 0.10,
            max_delay_us: 500,
            reorder_prob: 0.15,
            duplicate_prob: 0.15,
            ..Self::none(seed)
        }
    }

    /// Lossless faults plus message drops: runs either complete
    /// bit-identical or starve into a structured error.
    pub fn lossy(seed: u64) -> Self {
        FaultConfig {
            drop_prob: 0.20,
            ..Self::lossless(seed)
        }
    }

    /// Everything at once, including fiber panics and node stalls.
    pub fn chaos(seed: u64) -> Self {
        FaultConfig {
            panic_prob: 0.05,
            stall_prob: 0.05,
            max_stall_us: 300,
            ..Self::lossy(seed)
        }
    }

    /// Derive a fresh plan for a retry attempt: same rates, new seed.
    /// Models transient faults — a [`RecoveryPolicy`] retry re-rolls the
    /// dice instead of replaying the exact failure.
    ///
    /// (`RecoveryPolicy` lives in the `irred` crate's phased executor.)
    pub fn reseeded(mut self, salt: u64) -> Self {
        let mut s = self.seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        self.seed = splitmix64(&mut s);
        self
    }

    /// True if every rate is zero (plan would be a no-op).
    pub fn is_noop(&self) -> bool {
        self.delay_prob == 0.0
            && self.reorder_prob == 0.0
            && self.duplicate_prob == 0.0
            && self.drop_prob == 0.0
            && self.panic_prob == 0.0
            && self.stall_prob == 0.0
    }
}

/// The fate of one sync/data message, decided by [`FaultPlan::message_fault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageFault {
    /// Deliver normally.
    Deliver,
    /// Deliver after an injected latency.
    Delay { micros: u64 },
    /// Deliver after the other operations of the same batch.
    Reorder,
    /// Deliver twice with the same operation id (dedup must suppress one).
    Duplicate,
    /// Never deliver.
    Drop,
}

/// The fate of one fiber firing, decided by [`FaultPlan::fiber_fault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FiberFault {
    /// Run normally.
    Run,
    /// Pause the node first, then run.
    Stall { micros: u64 },
    /// Replace the firing with a modeled crash.
    Panic,
}

/// Counters of injected (and defended-against) faults, snapshotted into
/// [`RunStats`](crate::stats::RunStats) at the end of a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    pub delayed: u64,
    pub reordered: u64,
    pub duplicated: u64,
    /// Duplicate deliveries suppressed by the receiver-side dedup filter.
    pub deduped: u64,
    pub dropped: u64,
    pub injected_panics: u64,
    pub injected_stalls: u64,
}

impl FaultCounts {
    /// Total number of injected faults (dedup suppressions excluded —
    /// those are the defense, not the fault).
    pub fn total(&self) -> u64 {
        self.delayed
            + self.reordered
            + self.duplicated
            + self.dropped
            + self.injected_panics
            + self.injected_stalls
    }
}

/// A live fault plan: the config plus per-site occurrence counters, the
/// delivered-operation dedup set, and injection statistics. One plan is
/// built per run; both backends consult it at their delivery sites.
pub struct FaultPlan {
    cfg: FaultConfig,
    /// site-hash → number of times that site has been reached.
    occurrences: Mutex<HashMap<u64, u64>>,
    /// Operation ids already delivered once (duplicate suppression).
    delivered: Mutex<HashSet<u64>>,
    next_op_id: AtomicU64,
    delayed: AtomicU64,
    reordered: AtomicU64,
    duplicated: AtomicU64,
    deduped: AtomicU64,
    dropped: AtomicU64,
    injected_panics: AtomicU64,
    injected_stalls: AtomicU64,
}

/// Mix the seed, a fault-kind tag, the site identity, and the occurrence
/// index into one splitmix64 draw. Pure: no shared RNG stream, so native
/// thread scheduling cannot perturb the decisions.
fn site_hash(seed: u64, kind: u64, a: u64, b: u64, c: u64, occ: u64) -> u64 {
    let mut s = seed
        ^ kind.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ a.wrapping_mul(0xbf58_476d_1ce4_e5b9)
        ^ b.wrapping_mul(0x94d0_49bb_1331_11eb)
        ^ c.wrapping_mul(0xd6e8_feb8_6659_fd93)
        ^ occ.wrapping_mul(0xa076_1d64_78bd_642f);
    splitmix64(&mut s)
}

/// Map a u64 draw to a uniform f64 in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl FaultPlan {
    pub fn new(cfg: FaultConfig) -> Self {
        FaultPlan {
            cfg,
            occurrences: Mutex::new(HashMap::new()),
            delivered: Mutex::new(HashSet::new()),
            next_op_id: AtomicU64::new(0),
            delayed: AtomicU64::new(0),
            reordered: AtomicU64::new(0),
            duplicated: AtomicU64::new(0),
            deduped: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            injected_panics: AtomicU64::new(0),
            injected_stalls: AtomicU64::new(0),
        }
    }

    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Allocate a fresh operation id for a message delivery.
    pub fn next_op_id(&self) -> u64 {
        self.next_op_id.fetch_add(1, Ordering::Relaxed)
    }

    /// True exactly once per operation id: the dedup filter. A duplicate
    /// delivery reuses its original's id and is suppressed here.
    pub fn first_delivery(&self, op_id: u64) -> bool {
        let fresh = self.delivered.lock().unwrap().insert(op_id);
        if !fresh {
            self.deduped.fetch_add(1, Ordering::Relaxed);
        }
        fresh
    }

    fn occurrence(&self, site: u64) -> u64 {
        let mut occ = self.occurrences.lock().unwrap();
        let e = occ.entry(site).or_insert(0);
        let n = *e;
        *e += 1;
        n
    }

    /// Decide the fate of a sync/data message `src → dst` targeting sync
    /// slot `slot`. Deterministic per (seed, site, occurrence).
    pub fn message_fault(&self, src: usize, dst: usize, slot: u32) -> MessageFault {
        let site = site_hash(self.cfg.seed, 1, src as u64, dst as u64, slot as u64, 0);
        let occ = self.occurrence(site);
        let u = unit(site_hash(
            self.cfg.seed,
            2,
            src as u64,
            dst as u64,
            slot as u64,
            occ,
        ));
        let c = &self.cfg;
        let mut t = c.drop_prob;
        if u < t {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return MessageFault::Drop;
        }
        t += c.duplicate_prob;
        if u < t {
            self.duplicated.fetch_add(1, Ordering::Relaxed);
            return MessageFault::Duplicate;
        }
        t += c.reorder_prob;
        if u < t {
            self.reordered.fetch_add(1, Ordering::Relaxed);
            return MessageFault::Reorder;
        }
        t += c.delay_prob;
        if u < t {
            self.delayed.fetch_add(1, Ordering::Relaxed);
            let micros = site_hash(self.cfg.seed, 3, src as u64, dst as u64, slot as u64, occ)
                % (c.max_delay_us + 1);
            return MessageFault::Delay { micros };
        }
        MessageFault::Deliver
    }

    /// Decide the fate of a fiber firing on `node`, slot `slot`.
    pub fn fiber_fault(&self, node: usize, slot: u32) -> FiberFault {
        let site = site_hash(self.cfg.seed, 4, node as u64, slot as u64, 0, 0);
        let occ = self.occurrence(site);
        let u = unit(site_hash(
            self.cfg.seed,
            5,
            node as u64,
            slot as u64,
            0,
            occ,
        ));
        let c = &self.cfg;
        let mut t = c.panic_prob;
        if u < t {
            self.injected_panics.fetch_add(1, Ordering::Relaxed);
            return FiberFault::Panic;
        }
        t += c.stall_prob;
        if u < t {
            self.injected_stalls.fetch_add(1, Ordering::Relaxed);
            let micros = site_hash(self.cfg.seed, 6, node as u64, slot as u64, 0, occ)
                % (c.max_stall_us + 1);
            return FiberFault::Stall { micros };
        }
        FiberFault::Run
    }

    /// Snapshot the injection counters.
    pub fn counts(&self) -> FaultCounts {
        FaultCounts {
            delayed: self.delayed.load(Ordering::Relaxed),
            reordered: self.reordered.load(Ordering::Relaxed),
            duplicated: self.duplicated.load(Ordering::Relaxed),
            deduped: self.deduped.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            injected_panics: self.injected_panics.load(Ordering::Relaxed),
            injected_stalls: self.injected_stalls.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decisions(cfg: FaultConfig) -> Vec<MessageFault> {
        let plan = FaultPlan::new(cfg);
        let mut out = Vec::new();
        for src in 0..4usize {
            for dst in 0..4usize {
                for occ in 0..8 {
                    let _ = occ;
                    out.push(plan.message_fault(src, dst, 0));
                }
            }
        }
        out
    }

    #[test]
    fn same_seed_same_decisions() {
        let a = decisions(FaultConfig::lossy(42));
        let b = decisions(FaultConfig::lossy(42));
        assert_eq!(a, b);
    }

    #[test]
    fn decisions_are_order_independent() {
        // The same site/occurrence pair gets the same fate no matter how
        // calls to *other* sites interleave — the native backend's thread
        // nondeterminism cannot perturb a site's fault sequence.
        let plan_a = FaultPlan::new(FaultConfig::lossy(7));
        let plan_b = FaultPlan::new(FaultConfig::lossy(7));
        // Plan A: site (0,1,0) twice, then site (2,3,5) twice.
        let a = [
            plan_a.message_fault(0, 1, 0),
            plan_a.message_fault(0, 1, 0),
            plan_a.message_fault(2, 3, 5),
            plan_a.message_fault(2, 3, 5),
        ];
        // Plan B: interleaved.
        let b0 = plan_b.message_fault(2, 3, 5);
        let b1 = plan_b.message_fault(0, 1, 0);
        let b2 = plan_b.message_fault(2, 3, 5);
        let b3 = plan_b.message_fault(0, 1, 0);
        assert_eq!(a[0], b1);
        assert_eq!(a[1], b3);
        assert_eq!(a[2], b0);
        assert_eq!(a[3], b2);
    }

    #[test]
    fn different_seeds_differ() {
        let a = decisions(FaultConfig::lossy(1));
        let b = decisions(FaultConfig::lossy(2));
        assert_ne!(
            a, b,
            "two seeds giving identical 128-draw sequences is vanishingly unlikely"
        );
    }

    #[test]
    fn noop_plan_never_faults() {
        let all = decisions(FaultConfig::none(99));
        assert!(all.iter().all(|f| *f == MessageFault::Deliver));
        assert!(FaultConfig::none(99).is_noop());
        assert!(!FaultConfig::lossless(99).is_noop());
    }

    #[test]
    fn rates_roughly_respected() {
        let cfg = FaultConfig {
            drop_prob: 0.5,
            ..FaultConfig::none(1234)
        };
        let plan = FaultPlan::new(cfg);
        let mut dropped = 0;
        for i in 0..2000usize {
            if plan.message_fault(i % 8, (i / 8) % 8, (i % 5) as u32) == MessageFault::Drop {
                dropped += 1;
            }
        }
        assert!(
            (700..1300).contains(&dropped),
            "dropped {dropped}/2000 at p=0.5"
        );
        assert_eq!(plan.counts().dropped, dropped as u64);
    }

    #[test]
    fn dedup_suppresses_second_delivery() {
        let plan = FaultPlan::new(FaultConfig::none(0));
        let id = plan.next_op_id();
        assert!(plan.first_delivery(id));
        assert!(!plan.first_delivery(id));
        assert!(plan.first_delivery(plan.next_op_id()));
        assert_eq!(plan.counts().deduped, 1);
    }

    #[test]
    fn fiber_faults_deterministic() {
        let a = FaultPlan::new(FaultConfig::chaos(5));
        let b = FaultPlan::new(FaultConfig::chaos(5));
        for node in 0..4usize {
            for rep in 0..16 {
                let _ = rep;
                assert_eq!(a.fiber_fault(node, 3), b.fiber_fault(node, 3));
            }
        }
        let counts = a.counts();
        assert_eq!(counts, b.counts());
    }

    #[test]
    fn reseeded_changes_seed_only() {
        let base = FaultConfig::lossy(10);
        let re = base.reseeded(1);
        assert_ne!(base.seed, re.seed);
        assert_eq!(base.drop_prob, re.drop_prob);
        assert_ne!(re.seed, base.reseeded(2).seed);
    }
}
