//! An unbounded single-producer single-consumer queue on `std` atomics.
//!
//! The native backend keeps one of these per (sender, receiver) pair —
//! a *lane* — so no lock is ever taken on the message path. The queue
//! is a linked list of fixed-size segments:
//!
//! * the producer writes a slot, then publishes it by storing the
//!   segment's `len` with `Release`;
//! * the consumer loads `len` with `Acquire` before reading a slot, so
//!   the slot write happens-before the read;
//! * a full segment is extended by linking a fresh one through `next`
//!   (`Release` store / `Acquire` load), and the consumer frees each
//!   segment once it has drained past it.
//!
//! Both cursors live in `UnsafeCell`s: the producer cursor is only ever
//! touched by the single pushing thread, the consumer cursor only by
//! the single popping thread. That contract is what makes the
//! `unsafe impl Sync` below sound — callers must uphold it (the native
//! backend does so by construction: lane *s* of node *d* is pushed only
//! by thread *s* and popped only by thread *d*).
//!
//! `depth` is a relaxed counter kept for observability (stall dumps);
//! it is approximate during concurrent access and exact at quiescence.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};

/// Slots per segment. Big enough that steady-state traffic amortises
/// the allocation, small enough that an idle lane wastes little.
const SEG_CAP: usize = 32;

struct Segment<T> {
    /// Number of published slots; slots `[0, len)` are initialised.
    len: AtomicUsize,
    next: AtomicPtr<Segment<T>>,
    slots: [UnsafeCell<MaybeUninit<T>>; SEG_CAP],
}

impl<T> Segment<T> {
    fn alloc() -> *mut Segment<T> {
        Box::into_raw(Box::new(Segment {
            len: AtomicUsize::new(0),
            next: AtomicPtr::new(ptr::null_mut()),
            slots: std::array::from_fn(|_| UnsafeCell::new(MaybeUninit::uninit())),
        }))
    }
}

struct ProducerPos<T> {
    seg: *mut Segment<T>,
    /// Mirror of `seg.len` so the producer never re-reads the atomic.
    filled: usize,
}

struct ConsumerPos<T> {
    seg: *mut Segment<T>,
    taken: usize,
}

/// See the module docs for the single-producer / single-consumer
/// contract that `push` and `pop` callers must uphold.
pub struct SpscQueue<T> {
    tail: UnsafeCell<ProducerPos<T>>,
    head: UnsafeCell<ConsumerPos<T>>,
    depth: AtomicUsize,
}

// Sound under the documented SPSC contract: the two cursors are each
// confined to one thread, and slot hand-off is ordered by the
// Release/Acquire pair on `len` / `next`.
unsafe impl<T: Send> Send for SpscQueue<T> {}
unsafe impl<T: Send> Sync for SpscQueue<T> {}

impl<T> SpscQueue<T> {
    pub fn new() -> Self {
        let seg = Segment::alloc();
        SpscQueue {
            tail: UnsafeCell::new(ProducerPos { seg, filled: 0 }),
            head: UnsafeCell::new(ConsumerPos { seg, taken: 0 }),
            depth: AtomicUsize::new(0),
        }
    }

    /// Enqueue `value`. Must only be called from the producer thread.
    pub fn push(&self, value: T) {
        unsafe {
            let p = &mut *self.tail.get();
            if p.filled == SEG_CAP {
                let next = Segment::alloc();
                (*p.seg).next.store(next, Ordering::Release);
                p.seg = next;
                p.filled = 0;
            }
            (*(*p.seg).slots[p.filled].get()).write(value);
            p.filled += 1;
            (*p.seg).len.store(p.filled, Ordering::Release);
        }
        self.depth.fetch_add(1, Ordering::Relaxed);
    }

    /// Dequeue the oldest value, if any. Must only be called from the
    /// consumer thread.
    pub fn pop(&self) -> Option<T> {
        unsafe {
            let c = &mut *self.head.get();
            loop {
                let len = (*c.seg).len.load(Ordering::Acquire);
                if c.taken < len {
                    let v = (*(*c.seg).slots[c.taken].get()).assume_init_read();
                    c.taken += 1;
                    self.depth.fetch_sub(1, Ordering::Relaxed);
                    return Some(v);
                }
                if c.taken == SEG_CAP {
                    let next = (*c.seg).next.load(Ordering::Acquire);
                    if next.is_null() {
                        return None;
                    }
                    // The producer linked `next` before it last touched
                    // this segment; it will never look back at it.
                    drop(Box::from_raw(c.seg));
                    c.seg = next;
                    c.taken = 0;
                    continue;
                }
                return None;
            }
        }
    }

    /// Approximate number of queued values (exact at quiescence).
    pub fn len(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Default for SpscQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Drop for SpscQueue<T> {
    fn drop(&mut self) {
        unsafe {
            let c = &mut *self.head.get();
            let mut seg = c.seg;
            let mut taken = c.taken;
            while !seg.is_null() {
                let len = (*seg).len.load(Ordering::Acquire);
                for i in taken..len {
                    (*(*seg).slots[i].get()).assume_init_drop();
                }
                let next = (*seg).next.load(Ordering::Acquire);
                drop(Box::from_raw(seg));
                seg = next;
                taken = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_one_segment() {
        let q = SpscQueue::new();
        for i in 0..10 {
            q.push(i);
        }
        assert_eq!(q.len(), 10);
        for i in 0..10 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn fifo_across_many_segments() {
        let q = SpscQueue::new();
        let n = SEG_CAP * 17 + 5;
        for i in 0..n {
            q.push(i);
        }
        for i in 0..n {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_reuses_and_frees_segments() {
        let q = SpscQueue::new();
        let mut next_pop = 0usize;
        let mut next_push = 0usize;
        for round in 0..200 {
            for _ in 0..(round % 7 + 1) {
                q.push(next_push);
                next_push += 1;
            }
            for _ in 0..(round % 5 + 1) {
                if next_pop < next_push {
                    assert_eq!(q.pop(), Some(next_pop));
                    next_pop += 1;
                }
            }
        }
        while next_pop < next_push {
            assert_eq!(q.pop(), Some(next_pop));
            next_pop += 1;
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cross_thread_ordered_delivery() {
        let q = Arc::new(SpscQueue::new());
        let n = 100_000u64;
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                for i in 0..n {
                    q.push(i);
                }
            })
        };
        let mut expect = 0u64;
        while expect < n {
            if let Some(v) = q.pop() {
                assert_eq!(v, expect);
                expect += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn drop_releases_undrained_values() {
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let q = SpscQueue::new();
            for _ in 0..(SEG_CAP * 3 + 2) {
                q.push(Counted(Arc::clone(&drops)));
            }
            drop(q.pop()); // one drained value dropped by us
        }
        assert_eq!(drops.load(Ordering::Relaxed), SEG_CAP * 3 + 2);
    }
}
