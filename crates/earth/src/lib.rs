//! # earth-model — the EARTH multithreaded execution model in Rust
//!
//! EARTH (Efficient Architecture for Running THreads) executes programs
//! as a two-level hierarchy: *threaded procedures* composed of
//! *fibers*. Fibers are non-preemptive and become eligible to run when a
//! dataflow-style **sync slot** counts down to zero. Fibers themselves
//! initiate split-phase "EARTH operations" (remote data transfer +
//! synchronization), which are handled off the critical path by a
//! per-node **Synchronization Unit (SU)** while the **Execution Unit
//! (EU)** keeps running other ready fibers — this is what lets the
//! architecture overlap communication and computation.
//!
//! This crate implements that model with two interchangeable backends:
//!
//! * [`native`] — fibers run on real OS threads, one thread per simulated
//!   node, with atomics for sync slots. This mirrors the paper's remark
//!   that EARTH "can be emulated on off-the-shelf processors", and is
//!   used for wall-clock benchmarking on the host machine.
//! * [`sim`] — a deterministic discrete-event simulator that charges a
//!   calibrated cycle cost for computation (via [`memsim`]), fiber
//!   switches, SU operations, and network transfers. This stands in for
//!   the cycle-accurate MANNA simulator used in the paper (§5.2) and
//!   scales to any number of simulated nodes.
//!
//! Programs are built once as a [`MachineProgram`] — per-node state plus
//! a set of [`FiberSpec`]s — and can then be executed by either backend;
//! fiber bodies are generic over [`FiberCtx`], the handle through which
//! they issue EARTH operations.
//!
//! ## Model simplifications
//!
//! * Sync slots are one-per-fiber: `sync(node, fiber)` decrements that
//!   fiber's counter. (Real EARTH allows several slots per frame; nothing
//!   in the reproduced programs needs that generality.)
//! * A "threaded procedure" corresponds to a node's state type `S` (the
//!   procedure frame) plus the fibers registered against it. Dynamic
//!   procedure invocation is available through [`FiberCtx::spawn`].
//!
//! ## Example
//!
//! ```
//! use earth_model::{MachineProgram, FiberSpec, FiberCtx, Value};
//! use earth_model::native::{run_native, NativeCtx};
//!
//! // Two nodes; node 0 sends a value to node 1, which doubles it.
//! let mut prog: MachineProgram<f64, NativeCtx<f64>> = MachineProgram::new();
//! let n0 = prog.add_node(1.5);
//! let n1 = prog.add_node(0.0);
//! prog.node_mut(n0).add_fiber(FiberSpec::ready("send", move |s, cx: &mut NativeCtx<f64>| {
//!     let v = *s;
//!     cx.data_sync(n1, 7, Value::Scalar(v), 0);
//! }));
//! prog.node_mut(n1).add_fiber(FiberSpec::new("recv", 1, move |s, cx: &mut NativeCtx<f64>| {
//!     if let Some(Value::Scalar(v)) = cx.recv(7) {
//!         *s = 2.0 * v;
//!     }
//! }));
//! let report = run_native(prog).unwrap();
//! assert_eq!(report.states[1], 3.0);
//! ```

pub mod faults;
pub mod native;
pub mod pdes;
pub mod procedure;
pub mod program;
pub mod sim;
pub mod spsc;
pub mod stats;
pub mod value;

pub use faults::{FaultConfig, FaultCounts, FaultPlan, FiberFault, MessageFault};
pub use native::{
    run_native, run_native_traced, run_native_with, NativeConfig, NativeReport, RunError,
    StallDump, StallReason,
};
pub use procedure::{instantiate, invoke, FrameStore, ProcedureInstance, ProcedureTemplate};
pub use program::{
    FiberCtx, FiberSpec, FiberTemplate, MachineProgram, Meter, NodeBuilder, NodeTemplate,
    NullMeter, ProgramTemplate, SharedFiberBody, SlotId,
};
pub use sim::{
    render_gantt, run_sim, run_sim_checked, run_sim_traced, SimConfig, SimError, SimReport,
};
pub use stats::{NodeStats, OpCounts, RunStats};
pub use trace::{
    CsvSink, FaultKind, MetricsRegistry, NullSink, RingSink, Timeline, TraceEvent, TraceKind,
    TraceSink,
};
pub use value::{mailbox_key, Value};
