//! Sparse matrices shaped like the NAS CG benchmark inputs.
//!
//! The paper's `mvm` kernel multiplies the NAS Conjugate Gradient
//! matrices (classes W, A, B). NAS `makea` builds a symmetric positive
//! definite matrix as a sum of random sparse outer products; what
//! matters to the phased execution strategy is only the size, the
//! nonzeros-per-row distribution, and the fact that column indices are
//! spread across the whole row space. We generate matrices with exactly
//! the class sizes and those statistics (see `DESIGN.md` §3).

use harness::Rng64;

/// The NAS CG classes used in §5.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CgClass {
    /// 7 000 rows, 508 402 nonzeros.
    W,
    /// 14 000 rows, 1 853 104 nonzeros.
    A,
    /// 75 000 rows, 13 708 072 nonzeros.
    B,
}

impl CgClass {
    pub fn rows(&self) -> usize {
        match self {
            CgClass::W => 7_000,
            CgClass::A => 14_000,
            CgClass::B => 75_000,
        }
    }

    pub fn nonzeros(&self) -> usize {
        match self {
            CgClass::W => 508_402,
            CgClass::A => 1_853_104,
            CgClass::B => 13_708_072,
        }
    }

    pub fn label(&self) -> &'static str {
        match self {
            CgClass::W => "W",
            CgClass::A => "A",
            CgClass::B => "B",
        }
    }
}

/// Compressed-sparse-row matrix.
#[derive(Debug, Clone)]
pub struct SparseMatrix {
    pub nrows: usize,
    pub ncols: usize,
    /// `row_ptr[r]..row_ptr[r+1]` indexes the entries of row `r`.
    pub row_ptr: Vec<u64>,
    pub col_idx: Vec<u32>,
    pub values: Vec<f64>,
}

impl SparseMatrix {
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Generate a matrix with the exact shape of `class`.
    pub fn nas_class(class: CgClass, seed: u64) -> SparseMatrix {
        SparseMatrix::random(class.rows(), class.rows(), class.nonzeros(), seed)
    }

    /// Random CSR matrix with exactly `nnz` nonzeros spread over `nrows`
    /// rows: each row gets `nnz/nrows ± 50%` entries (remainders settled
    /// on the last rows), columns drawn with a near-diagonal bias plus a
    /// uniform tail — the qualitative profile of NAS `makea` output.
    pub fn random(nrows: usize, ncols: usize, nnz: usize, seed: u64) -> SparseMatrix {
        assert!(nrows >= 1 && ncols >= 2);
        assert!(nnz >= nrows, "want at least one entry per row");
        assert!(nnz <= nrows * ncols, "more nonzeros than matrix cells");
        let mut rng = Rng64::seed_from_u64(seed);
        let mean = nnz / nrows;
        let mut row_ptr = Vec::with_capacity(nrows + 1);
        let mut col_idx = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        row_ptr.push(0u64);

        let mut remaining = nnz;
        let mut cols_scratch: Vec<u32> = Vec::with_capacity(2 * mean);
        for r in 0..nrows {
            let rows_left = nrows - r;
            // Target for this row, clamped so the remaining rows can
            // still get at least 1 and at most 2*mean+1 each.
            let jitter = if mean > 1 {
                rng.gen_range(mean / 2..=mean + mean / 2)
            } else {
                1
            };
            // Cap per-row capacity at ncols when sizing the leftovers so
            // narrow matrices cannot paint the tail into a corner.
            let per_row_cap = (2 * mean + 1).min(ncols);
            let max_allowed = remaining - (rows_left - 1);
            let min_required = remaining.saturating_sub((rows_left - 1) * per_row_cap);
            let want = jitter.clamp(min_required.max(1), max_allowed.min(ncols));

            cols_scratch.clear();
            let mut tries = 0;
            while cols_scratch.len() < want {
                // Mostly uniform columns with a mild diagonal bias — the
                // qualitative profile of NAS makea output (sums of random
                // sparse outer products land almost uniformly).
                let c = if rng.gen_bool(0.02) {
                    let band = (ncols / 16).max(4) as i64;
                    let off = rng.gen_range(-band..=band);
                    (r as i64 + off).rem_euclid(ncols as i64) as u32
                } else {
                    rng.gen_range(0..ncols as u32)
                };
                if !cols_scratch.contains(&c) {
                    cols_scratch.push(c);
                }
                tries += 1;
                if tries > 100 * want {
                    // Degenerate tiny case: fill sequentially.
                    let mut c = 0u32;
                    while cols_scratch.len() < want {
                        if !cols_scratch.contains(&c) {
                            cols_scratch.push(c);
                        }
                        c += 1;
                    }
                }
            }
            cols_scratch.sort_unstable();
            for &c in &cols_scratch {
                col_idx.push(c);
                values.push(rng.gen_range(0.0..1.0));
            }
            remaining -= want;
            row_ptr.push(col_idx.len() as u64);
        }
        assert_eq!(remaining, 0);
        assert_eq!(col_idx.len(), nnz);

        SparseMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Generate a symmetric, strictly diagonally dominant (hence positive
    /// definite) matrix with about `nnz` nonzeros — the shape a conjugate
    /// gradient solver needs (NAS CG's `makea` also produces an SPD
    /// matrix). The pattern is a symmetrized random pattern plus a
    /// dominant diagonal.
    pub fn symmetric_dd(n: usize, nnz: usize, seed: u64) -> SparseMatrix {
        let base = SparseMatrix::random(n, n, nnz.max(n), seed);
        // Collect symmetrized off-diagonal entries.
        let mut entries: Vec<(u32, u32, f64)> = Vec::with_capacity(base.nnz() * 2);
        for r in 0..n {
            for e in base.row_ptr[r] as usize..base.row_ptr[r + 1] as usize {
                let c = base.col_idx[e] as usize;
                if c == r {
                    continue;
                }
                let v = base.values[e] * 0.5;
                entries.push((r as u32, c as u32, v));
                entries.push((c as u32, r as u32, v));
            }
        }
        entries.sort_unstable_by_key(|&(r, c, _)| (r, c));
        // Merge duplicates, accumulate row sums for the dominant diagonal.
        let mut row_ptr = vec![0u64; n + 1];
        let mut col_idx = Vec::with_capacity(entries.len() + n);
        let mut values = Vec::with_capacity(entries.len() + n);
        let mut rowsum = vec![0.0f64; n];
        let mut i = 0usize;
        for r in 0..n as u32 {
            let mut diag_written = false;
            while i < entries.len() && entries[i].0 == r {
                let (_, c, mut v) = entries[i];
                i += 1;
                while i < entries.len() && entries[i].0 == r && entries[i].1 == c {
                    v += entries[i].2;
                    i += 1;
                }
                if !diag_written && c > r {
                    col_idx.push(r);
                    values.push(0.0); // patched below
                    diag_written = true;
                }
                col_idx.push(c);
                values.push(v);
                rowsum[r as usize] += v.abs();
            }
            if !diag_written {
                col_idx.push(r);
                values.push(0.0);
            }
            row_ptr[r as usize + 1] = col_idx.len() as u64;
        }
        // Patch diagonals: rowsum + 1 guarantees strict dominance.
        for r in 0..n {
            for e in row_ptr[r] as usize..row_ptr[r + 1] as usize {
                if col_idx[e] as usize == r {
                    values[e] = rowsum[r] + 1.0;
                }
            }
        }
        SparseMatrix {
            nrows: n,
            ncols: n,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// `y = A·x` sequential reference.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        for (r, yr) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for e in self.row_ptr[r] as usize..self.row_ptr[r + 1] as usize {
                acc += self.values[e] * x[self.col_idx[e] as usize];
            }
            *yr = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_w_exact_shape() {
        let m = SparseMatrix::nas_class(CgClass::W, 1);
        assert_eq!(m.nrows, 7_000);
        assert_eq!(m.nnz(), 508_402);
        assert_eq!(*m.row_ptr.last().unwrap() as usize, m.nnz());
    }

    #[test]
    fn rows_sorted_and_unique() {
        let m = SparseMatrix::random(100, 100, 1_000, 3);
        for r in 0..m.nrows {
            let cols = &m.col_idx[m.row_ptr[r] as usize..m.row_ptr[r + 1] as usize];
            for w in cols.windows(2) {
                assert!(w[0] < w[1], "row {r} not strictly sorted");
            }
        }
    }

    #[test]
    fn every_row_nonempty() {
        let m = SparseMatrix::random(50, 50, 75, 4);
        for r in 0..m.nrows {
            assert!(m.row_ptr[r + 1] > m.row_ptr[r], "row {r} empty");
        }
        assert_eq!(m.nnz(), 75);
    }

    #[test]
    fn spmv_identity_like() {
        // Build a small diagonal-ish check by hand.
        let m = SparseMatrix {
            nrows: 3,
            ncols: 3,
            row_ptr: vec![0, 1, 3, 4],
            col_idx: vec![0, 0, 2, 1],
            values: vec![2.0, 1.0, 3.0, 4.0],
        };
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        m.spmv(&x, &mut y);
        assert_eq!(y, [2.0, 1.0 + 9.0, 8.0]);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = SparseMatrix::random(200, 200, 4_000, 9);
        let b = SparseMatrix::random(200, 200, 4_000, 9);
        assert_eq!(a.col_idx, b.col_idx);
        assert_eq!(a.values, b.values);
    }

    #[test]
    fn symmetric_dd_is_symmetric_and_dominant() {
        let m = SparseMatrix::symmetric_dd(60, 500, 7);
        // Symmetry: collect entries into a map, check transposes match.
        let mut map = std::collections::HashMap::new();
        for r in 0..m.nrows {
            let mut diag = 0.0;
            let mut off = 0.0;
            for e in m.row_ptr[r] as usize..m.row_ptr[r + 1] as usize {
                let c = m.col_idx[e] as usize;
                map.insert((r, c), m.values[e]);
                if c == r {
                    diag = m.values[e];
                } else {
                    off += m.values[e].abs();
                }
            }
            assert!(diag > off, "row {r} not diagonally dominant");
        }
        for (&(r, c), &v) in &map {
            assert_eq!(map.get(&(c, r)), Some(&v), "asymmetric at ({r},{c})");
        }
    }

    #[test]
    fn columns_span_the_space() {
        let m = SparseMatrix::random(1_000, 1_000, 20_000, 5);
        let mut touched = vec![false; 1_000];
        for &c in &m.col_idx {
            touched[c as usize] = true;
        }
        let frac = touched.iter().filter(|&&t| t).count() as f64 / 1_000.0;
        assert!(frac > 0.9, "only {frac} of columns touched");
    }
}
