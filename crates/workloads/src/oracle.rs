//! The golden oracle: a straight-line sequential scatter-add against
//! which every engine's result is checked **bit for bit**.
//!
//! Deliberately the dumbest possible implementation — one loop, global
//! iteration order, no distribution, no phases, no buffering — so it
//! shares no code (and no bugs) with any executor. Because the family
//! weights and coefficients are integer-valued, every partial sum is an
//! exactly-representable integer and summation order cannot perturb the
//! bits; an engine that loses, duplicates, or misroutes a single
//! contribution produces a different `f64` and fails `assert_eq!`.
//!
//! This crate sits *below* `irred` in the dependency order, so the
//! oracle works on raw [`FamilySpec`] data only — it never sees a
//! kernel, an engine, or a plan.

use crate::family::FamilySpec;

/// Reduce a family sequentially: returns `x[a][e]` = the summed
/// contributions of every iteration's every reference, one `Vec` per
/// reduction array.
pub fn oracle_reduce(f: &FamilySpec) -> Vec<Vec<f64>> {
    oracle_reduce_raw(f.num_elements, &f.indirection, &f.weights, &f.coeffs)
}

/// The raw form of [`oracle_reduce`], for callers holding loose arrays
/// (e.g. a churned indirection mid-trajectory).
pub fn oracle_reduce_raw(
    num_elements: usize,
    indirection: &[Vec<u32>],
    weights: &[f64],
    coeffs: &[Vec<f64>],
) -> Vec<Vec<f64>> {
    let arrays = coeffs.first().map_or(0, |c| c.len());
    let mut x = vec![vec![0.0f64; num_elements]; arrays];
    let iters = indirection.first().map_or(0, |a| a.len());
    for i in 0..iters {
        for (r, ind_r) in indirection.iter().enumerate() {
            let e = ind_r[i] as usize;
            for (a, xa) in x.iter_mut().enumerate() {
                xa[e] += coeffs[r][a] * weights[i];
            }
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hotkey::HotKeyScatter;
    use crate::pic::PicDeck;
    use crate::powerlaw::PowerLawGraph;

    #[test]
    fn hand_computed_tiny_case() {
        let f = FamilySpec {
            name: "tiny".into(),
            num_elements: 3,
            indirection: vec![vec![0, 2], vec![1, 1]],
            weights: vec![5.0, 7.0],
            coeffs: vec![vec![1.0], vec![-2.0]],
        };
        let x = oracle_reduce(&f);
        // iter 0: x[0] += 5, x[1] -= 10; iter 1: x[2] += 7, x[1] -= 14.
        assert_eq!(x, vec![vec![5.0, -24.0, 7.0]]);
    }

    #[test]
    fn powerlaw_mass_is_conserved() {
        // coeffs (-1, +1) on the two endpoints: total mass must be 0.
        let g = PowerLawGraph::generate(80, 900, 1.8, 3).unwrap();
        let x = oracle_reduce(&g.to_family(3));
        assert_eq!(x[0].iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn hotkey_totals_match_weights() {
        let d = HotKeyScatter::generate(50, 700, 3, 0.8, 2, 4).unwrap();
        let f = d.to_family(4);
        let x = oracle_reduce(&f);
        let w_total: f64 = f.weights.iter().sum();
        assert_eq!(x[0].iter().sum::<f64>(), w_total);
        assert_eq!(x[1].iter().sum::<f64>(), 2.0 * w_total);
    }

    #[test]
    fn pic_charge_totals_and_current_cancel() {
        let d = PicDeck::generate(40, 500, 2, 0.3, 6).unwrap();
        for step in 0..=d.steps {
            let f = d.family_at(step);
            let x = oracle_reduce(&f);
            let q: f64 = f.weights.iter().sum();
            // Charge splits 2:1 → total 3q; current is +1/−1 → total 0.
            assert_eq!(x[0].iter().sum::<f64>(), 3.0 * q, "step {step}");
            assert_eq!(x[1].iter().sum::<f64>(), 0.0, "step {step}");
        }
    }
}
