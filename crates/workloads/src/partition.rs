//! Iteration distributions and the partitioning-based baseline's
//! partitioner.
//!
//! The paper's phased strategy needs only a *trivial* distribution of
//! iterations to processors — block or cyclic (strategies `2b` / `2c`…).
//! The partitioning-based comparator (classic inspector/executor)
//! instead pays for a geometric partitioner; we provide recursive
//! coordinate bisection (RCB), the standard light-geometry choice.

/// Why a partition request is rejected. The high-skew workload families
/// routinely produce degenerate shapes (more processors than iterations,
/// part counts that RCB cannot halve); callers that reach those corners
/// get a typed error to match on instead of a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionError {
    /// Zero processors describe no machine.
    ZeroProcs,
    /// RCB halves the point set recursively; `parts` must be a power of
    /// two.
    NotPowerOfTwo { parts: usize },
    /// A part received no items — the degenerate case where fewer
    /// iterations (or points) exist than parts.
    EmptyPart { part: usize, parts: usize },
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::ZeroProcs => write!(f, "partition needs at least 1 processor"),
            PartitionError::NotPowerOfTwo { parts } => {
                write!(f, "RCB needs a power-of-two part count, got {parts}")
            }
            PartitionError::EmptyPart { part, parts } => {
                write!(f, "part {part} of {parts} received no items")
            }
        }
    }
}

impl std::error::Error for PartitionError {}

/// How loop iterations (and their per-iteration arrays) are divided
/// among processors before the LightInspector runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// `num_iters/P` consecutive iterations per processor.
    Block,
    /// Round-robin assignment, iteration `i` to processor `i mod P`.
    Cyclic,
}

impl Distribution {
    /// Short label used in figures: `b` / `c` as in the paper's `2b`/`2c`.
    pub fn label(&self) -> &'static str {
        match self {
            Distribution::Block => "b",
            Distribution::Cyclic => "c",
        }
    }
}

/// Assign `num_iters` iterations to `procs` processors. Returns the
/// global iteration ids owned by each processor, in increasing order.
/// Processors beyond `num_iters` legally receive empty portions (the
/// phased executor degrades them to bare synchronization); use
/// [`try_distribute_nonempty`] when every part must carry work.
pub fn try_distribute(
    num_iters: usize,
    procs: usize,
    d: Distribution,
) -> Result<Vec<Vec<u32>>, PartitionError> {
    if procs < 1 {
        return Err(PartitionError::ZeroProcs);
    }
    let mut out = vec![Vec::with_capacity(num_iters / procs + 1); procs];
    match d {
        Distribution::Block => {
            // Balanced block sizes: first (num_iters % procs) blocks get
            // one extra.
            let base = num_iters / procs;
            let extra = num_iters % procs;
            let mut start = 0usize;
            for (p, v) in out.iter_mut().enumerate() {
                let len = base + usize::from(p < extra);
                v.extend((start..start + len).map(|i| i as u32));
                start += len;
            }
        }
        Distribution::Cyclic => {
            for i in 0..num_iters {
                out[i % procs].push(i as u32);
            }
        }
    }
    Ok(out)
}

/// [`try_distribute`], additionally rejecting distributions where any
/// processor ends up with no iterations at all.
pub fn try_distribute_nonempty(
    num_iters: usize,
    procs: usize,
    d: Distribution,
) -> Result<Vec<Vec<u32>>, PartitionError> {
    let out = try_distribute(num_iters, procs, d)?;
    if let Some(part) = out.iter().position(|v| v.is_empty()) {
        return Err(PartitionError::EmptyPart { part, parts: procs });
    }
    Ok(out)
}

/// Panicking wrapper around [`try_distribute`] for static call sites.
pub fn distribute(num_iters: usize, procs: usize, d: Distribution) -> Vec<Vec<u32>> {
    try_distribute(num_iters, procs, d).unwrap_or_else(|e| panic!("invalid distribution: {e}"))
}

/// Distribute interaction pairs to processors by a stable hash of the
/// pair's identity. Balanced like a cyclic distribution, but invariant
/// under reordering of the list — after an adaptive neighbour-list
/// rebuild, surviving pairs land on the *same* processor, so only real
/// churn reaches the incremental inspector.
pub fn try_hash_distribute_pairs(
    ia1: &[u32],
    ia2: &[u32],
    procs: usize,
) -> Result<Vec<Vec<(u32, u32)>>, PartitionError> {
    if procs < 1 {
        return Err(PartitionError::ZeroProcs);
    }
    let mut out = vec![Vec::with_capacity(ia1.len() / procs + 1); procs];
    for (&a, &b) in ia1.iter().zip(ia2) {
        let h = (u64::from(a)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(u64::from(b)))
        .wrapping_mul(0xC2B2AE3D27D4EB4F);
        out[(h >> 33) as usize % procs].push((a, b));
    }
    Ok(out)
}

/// Panicking wrapper around [`try_hash_distribute_pairs`].
pub fn hash_distribute_pairs(ia1: &[u32], ia2: &[u32], procs: usize) -> Vec<Vec<(u32, u32)>> {
    try_hash_distribute_pairs(ia1, ia2, procs)
        .unwrap_or_else(|e| panic!("invalid distribution: {e}"))
}

/// Recursive coordinate bisection over 3-D points: split the longest
/// axis at the median until `parts` parts exist. Returns a part id per
/// point. Rejects non-power-of-two part counts, and part counts
/// exceeding the point count (those would leave parts empty — the
/// degenerate shape extreme-skew decks produce).
pub fn try_rcb_partition(points: &[[f64; 3]], parts: usize) -> Result<Vec<u32>, PartitionError> {
    if parts == 0 || !parts.is_power_of_two() {
        return Err(PartitionError::NotPowerOfTwo { parts });
    }
    if points.len() < parts {
        return Err(PartitionError::EmptyPart {
            part: points.len(),
            parts,
        });
    }
    let mut ids: Vec<u32> = (0..points.len() as u32).collect();
    let mut owner = vec![0u32; points.len()];
    rcb_rec(points, &mut ids, 0, parts as u32, &mut owner);
    Ok(owner)
}

/// Panicking wrapper around [`try_rcb_partition`], kept for static call
/// sites whose part counts are compile-time powers of two.
pub fn rcb_partition(points: &[[f64; 3]], parts: usize) -> Vec<u32> {
    try_rcb_partition(points, parts)
        .unwrap_or_else(|e| panic!("RCB needs a power-of-two part count: {e}"))
}

fn rcb_rec(points: &[[f64; 3]], ids: &mut [u32], first: u32, parts: u32, owner: &mut [u32]) {
    if parts == 1 || ids.len() <= 1 {
        for &i in ids.iter() {
            owner[i as usize] = first;
        }
        return;
    }
    // Longest axis of the bounding box.
    let mut lo = [f64::INFINITY; 3];
    let mut hi = [f64::NEG_INFINITY; 3];
    for &i in ids.iter() {
        for d in 0..3 {
            lo[d] = lo[d].min(points[i as usize][d]);
            hi[d] = hi[d].max(points[i as usize][d]);
        }
    }
    let axis = (0..3)
        .max_by(|&a, &b| (hi[a] - lo[a]).partial_cmp(&(hi[b] - lo[b])).unwrap())
        .unwrap();
    let mid = ids.len() / 2;
    ids.select_nth_unstable_by(mid, |&a, &b| {
        points[a as usize][axis]
            .partial_cmp(&points[b as usize][axis])
            .unwrap()
    });
    let (left, right) = ids.split_at_mut(mid);
    rcb_rec(points, left, first, parts / 2, owner);
    rcb_rec(points, right, first + parts / 2, parts / 2, owner);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_covers_all_in_order() {
        let d = distribute(10, 3, Distribution::Block);
        assert_eq!(d[0], vec![0, 1, 2, 3]);
        assert_eq!(d[1], vec![4, 5, 6]);
        assert_eq!(d[2], vec![7, 8, 9]);
    }

    #[test]
    fn cyclic_round_robins() {
        let d = distribute(7, 3, Distribution::Cyclic);
        assert_eq!(d[0], vec![0, 3, 6]);
        assert_eq!(d[1], vec![1, 4]);
        assert_eq!(d[2], vec![2, 5]);
    }

    #[test]
    fn distributions_are_balanced() {
        for &n in &[100usize, 101, 999] {
            for &p in &[1usize, 2, 7, 32] {
                for d in [Distribution::Block, Distribution::Cyclic] {
                    let parts = distribute(n, p, d);
                    let total: usize = parts.iter().map(|v| v.len()).sum();
                    assert_eq!(total, n);
                    let min = parts.iter().map(|v| v.len()).min().unwrap();
                    let max = parts.iter().map(|v| v.len()).max().unwrap();
                    assert!(max - min <= 1, "imbalance for n={n} p={p} {d:?}");
                }
            }
        }
    }

    #[test]
    fn labels() {
        assert_eq!(Distribution::Block.label(), "b");
        assert_eq!(Distribution::Cyclic.label(), "c");
    }

    #[test]
    fn rcb_splits_evenly() {
        // 8×8 grid of points, 4 parts.
        let mut pts = Vec::new();
        for i in 0..8 {
            for j in 0..8 {
                pts.push([i as f64, j as f64, 0.0]);
            }
        }
        let owner = rcb_partition(&pts, 4);
        let mut counts = [0usize; 4];
        for &o in &owner {
            counts[o as usize] += 1;
        }
        assert_eq!(counts, [16, 16, 16, 16]);
    }

    #[test]
    fn rcb_parts_are_spatially_coherent() {
        // Points on a line: each quarter must be contiguous.
        let pts: Vec<[f64; 3]> = (0..16).map(|i| [i as f64, 0.0, 0.0]).collect();
        let owner = rcb_partition(&pts, 4);
        for w in 0..4 {
            let idxs: Vec<usize> = (0..16).filter(|&i| owner[i] == w).collect();
            assert_eq!(idxs.len(), 4);
            assert_eq!(idxs[3] - idxs[0], 3, "part {w} not contiguous: {idxs:?}");
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rcb_rejects_odd_parts() {
        rcb_partition(&[[0.0; 3]; 4], 3);
    }

    #[test]
    fn try_distribute_rejects_zero_procs() {
        assert_eq!(
            try_distribute(10, 0, Distribution::Block),
            Err(PartitionError::ZeroProcs)
        );
        assert_eq!(
            try_hash_distribute_pairs(&[0], &[1], 0),
            Err(PartitionError::ZeroProcs)
        );
    }

    #[test]
    fn try_distribute_allows_empty_trailing_portions() {
        // 2 iterations on 5 processors: legal, trailing portions empty.
        let parts = try_distribute(2, 5, Distribution::Cyclic).unwrap();
        assert_eq!(parts.iter().filter(|v| v.is_empty()).count(), 3);
    }

    #[test]
    fn try_distribute_nonempty_rejects_starved_parts() {
        assert_eq!(
            try_distribute_nonempty(2, 5, Distribution::Block),
            Err(PartitionError::EmptyPart { part: 2, parts: 5 })
        );
        assert!(try_distribute_nonempty(5, 5, Distribution::Block).is_ok());
    }

    #[test]
    fn try_rcb_rejects_degenerate_shapes() {
        assert_eq!(
            try_rcb_partition(&[[0.0; 3]; 4], 3),
            Err(PartitionError::NotPowerOfTwo { parts: 3 })
        );
        assert_eq!(
            try_rcb_partition(&[[0.0; 3]; 4], 0),
            Err(PartitionError::NotPowerOfTwo { parts: 0 })
        );
        // More parts than points: some part must end up empty.
        assert_eq!(
            try_rcb_partition(&[[0.0; 3]; 2], 4),
            Err(PartitionError::EmptyPart { part: 2, parts: 4 })
        );
    }

    #[test]
    fn partition_errors_display() {
        assert!(format!("{}", PartitionError::ZeroProcs).contains("at least 1"));
        assert!(format!("{}", PartitionError::NotPowerOfTwo { parts: 3 }).contains("power-of-two"));
        assert!(format!("{}", PartitionError::EmptyPart { part: 2, parts: 4 }).contains("part 2"));
    }
}
