//! Molecular-dynamics configurations for the `moldyn` kernel.
//!
//! The paper's `moldyn` datasets (2 916 molecules / 26 244 interactions
//! and 10 976 molecules / 65 856 interactions, from Tseng & Han) are the
//! classic face-centred-cubic benchmark configurations. We regenerate
//! them from first principles: molecules on a periodic FCC lattice with
//! a cutoff-radius interaction list.
//!
//! * `4·9³ = 2 916` molecules with the cutoff between the first and
//!   *second* neighbour shells gives `2 916 · 18/2 = 26 244` pairs;
//! * `4·14³ = 10 976` molecules with the cutoff inside the first shell
//!   gives `10 976 · 12/2 = 65 856` pairs —
//!
//! exactly the paper's counts, confirming these are the same datasets.
//!
//! For the adaptive experiments (the paper's future work, our extension)
//! [`MolDyn::perturb`] jitters positions and
//! [`MolDyn::rebuild_interactions`] recomputes the neighbour list with a
//! cell-list search, reporting how many entries changed.

use harness::Rng64;

/// The two moldyn datasets of §5.4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MolDynPreset {
    /// "2K dataset": 2 916 molecules, 26 244 interactions.
    MolDyn2K,
    /// "10K dataset": 10 976 molecules, 65 856 interactions.
    MolDyn10K,
}

impl MolDynPreset {
    /// FCC cells per axis.
    pub fn cells(&self) -> usize {
        match self {
            MolDynPreset::MolDyn2K => 9,
            MolDynPreset::MolDyn10K => 14,
        }
    }

    pub fn molecules(&self) -> usize {
        4 * self.cells().pow(3)
    }

    pub fn interactions(&self) -> usize {
        match self {
            // first + second shell: 18 neighbours each
            MolDynPreset::MolDyn2K => self.molecules() * 18 / 2,
            // first shell only: 12 neighbours each
            MolDynPreset::MolDyn10K => self.molecules() * 12 / 2,
        }
    }

    /// Cutoff radius in units of the FCC lattice constant.
    fn cutoff(&self) -> f64 {
        match self {
            MolDynPreset::MolDyn2K => 1.05,  // between a (2nd shell) and √1.5·a
            MolDynPreset::MolDyn10K => 0.75, // between a/√2 (1st shell) and a
        }
    }

    pub fn label(&self) -> &'static str {
        match self {
            MolDynPreset::MolDyn2K => "moldyn-2.9K/26.2K",
            MolDynPreset::MolDyn10K => "moldyn-11.0K/65.9K",
        }
    }
}

/// A molecular configuration: positions in a periodic box plus the
/// cutoff interaction list (the indirection arrays of the force loop).
#[derive(Debug, Clone)]
pub struct MolDyn {
    pub num_molecules: usize,
    /// Periodic box side (lattice units).
    pub box_side: f64,
    pub cutoff: f64,
    /// Positions, `[x, y, z]` per molecule.
    pub pos: Vec<[f64; 3]>,
    /// Interaction endpoint arrays: pair `i` couples molecules
    /// `ia1[i]` and `ia2[i]`.
    pub ia1: Vec<u32>,
    pub ia2: Vec<u32>,
}

impl MolDyn {
    /// Build one of the paper's datasets. Panics if the generated
    /// interaction count ever deviates from the paper's (it cannot, for
    /// an unperturbed lattice).
    pub fn preset(p: MolDynPreset) -> MolDyn {
        let md = MolDyn::fcc(p.cells(), p.cutoff());
        assert_eq!(md.num_molecules, p.molecules());
        assert_eq!(md.num_interactions(), p.interactions());
        md
    }

    /// Molecules on `cells³` FCC unit cells (lattice constant 1) in a
    /// periodic box, with interactions = pairs within `cutoff`.
    pub fn fcc(cells: usize, cutoff: f64) -> MolDyn {
        assert!(cells >= 2, "need at least 2 cells for periodicity");
        let offsets = [
            [0.0, 0.0, 0.0],
            [0.5, 0.5, 0.0],
            [0.5, 0.0, 0.5],
            [0.0, 0.5, 0.5],
        ];
        let mut pos = Vec::with_capacity(4 * cells.pow(3));
        for x in 0..cells {
            for y in 0..cells {
                for z in 0..cells {
                    for o in &offsets {
                        pos.push([x as f64 + o[0], y as f64 + o[1], z as f64 + o[2]]);
                    }
                }
            }
        }
        let mut md = MolDyn {
            num_molecules: pos.len(),
            box_side: cells as f64,
            cutoff,
            pos,
            ia1: Vec::new(),
            ia2: Vec::new(),
        };
        md.rebuild_interactions();
        md
    }

    pub fn num_interactions(&self) -> usize {
        self.ia1.len()
    }

    /// Minimum-image displacement between molecules `i` and `j`.
    fn disp(&self, i: usize, j: usize) -> [f64; 3] {
        let mut d = [0.0; 3];
        for (a, da) in d.iter_mut().enumerate() {
            let mut x = self.pos[j][a] - self.pos[i][a];
            let l = self.box_side;
            if x > l / 2.0 {
                x -= l;
            } else if x < -l / 2.0 {
                x += l;
            }
            *da = x;
        }
        d
    }

    fn dist2(&self, i: usize, j: usize) -> f64 {
        let d = self.disp(i, j);
        d[0] * d[0] + d[1] * d[1] + d[2] * d[2]
    }

    /// Jitter every position by up to `amplitude` (lattice units) per
    /// axis — the adaptive step that invalidates parts of the neighbour
    /// list. Deterministic in `seed`.
    pub fn perturb(&mut self, amplitude: f64, seed: u64) {
        let mut rng = Rng64::seed_from_u64(seed);
        let l = self.box_side;
        for p in &mut self.pos {
            for pa in p.iter_mut() {
                *pa = (*pa + rng.gen_range(-amplitude..=amplitude)).rem_euclid(l);
            }
        }
    }

    /// Renumber the molecules with a random permutation (deterministic
    /// in `seed`). Benchmark moldyn datasets carry the arbitrary
    /// numbering of their construction pipeline; the paper presets use
    /// this (see `Mesh::shuffled` for the rationale).
    pub fn shuffled(mut self, seed: u64) -> MolDyn {
        let mut rng = Rng64::seed_from_u64(seed ^ 0xBEEF);
        let n = self.num_molecules;
        let mut perm: Vec<u32> = (0..n as u32).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        let mut pos = vec![[0.0; 3]; n];
        for (old, &new) in perm.iter().enumerate() {
            pos[new as usize] = self.pos[old];
        }
        self.pos = pos;
        for (a, b) in self.ia1.iter_mut().zip(self.ia2.iter_mut()) {
            let (x, y) = (perm[*a as usize], perm[*b as usize]);
            *a = x.min(y);
            *b = x.max(y);
        }
        self
    }

    /// Recompute the interaction list with a periodic cell-list search.
    /// Returns the number of pairs added plus removed relative to the
    /// previous list (the "churn" an incremental inspector must absorb).
    pub fn rebuild_interactions(&mut self) -> usize {
        let old: std::collections::HashSet<(u32, u32)> = self
            .ia1
            .iter()
            .zip(&self.ia2)
            .map(|(&a, &b)| (a, b))
            .collect();

        let l = self.box_side;
        let ncell = (l / self.cutoff).floor().max(1.0) as usize;
        let cell_of = |p: &[f64; 3]| -> usize {
            let cx = ((p[0] / l * ncell as f64) as usize).min(ncell - 1);
            let cy = ((p[1] / l * ncell as f64) as usize).min(ncell - 1);
            let cz = ((p[2] / l * ncell as f64) as usize).min(ncell - 1);
            (cx * ncell + cy) * ncell + cz
        };
        let mut cells: Vec<Vec<u32>> = vec![Vec::new(); ncell * ncell * ncell];
        for (i, p) in self.pos.iter().enumerate() {
            cells[cell_of(p)].push(i as u32);
        }

        let c2 = self.cutoff * self.cutoff;
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(old.len() + 64);
        let n = ncell as isize;
        for cx in 0..n {
            for cy in 0..n {
                for cz in 0..n {
                    let home = ((cx * n + cy) * n + cz) as usize;
                    for dx in -1..=1isize {
                        for dy in -1..=1isize {
                            for dz in -1..=1isize {
                                let ox = (cx + dx).rem_euclid(n);
                                let oy = (cy + dy).rem_euclid(n);
                                let oz = (cz + dz).rem_euclid(n);
                                let other = ((ox * n + oy) * n + oz) as usize;
                                if other < home {
                                    continue;
                                }
                                for (ai, &a) in cells[home].iter().enumerate() {
                                    let bs: &[u32] = &cells[other];
                                    let start = if other == home { ai + 1 } else { 0 };
                                    for &b in &bs[start..] {
                                        if self.dist2(a as usize, b as usize) < c2 {
                                            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                                            pairs.push((lo, hi));
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        // Neighbouring cell pairs can be visited twice when ncell < 3
        // (periodic wrap makes two offsets reach the same cell).
        pairs.sort_unstable();
        pairs.dedup();

        let new: std::collections::HashSet<(u32, u32)> = pairs.iter().copied().collect();
        let churn = old.symmetric_difference(&new).count();
        self.ia1 = pairs.iter().map(|p| p.0).collect();
        self.ia2 = pairs.iter().map(|p| p.1).collect();
        churn
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_2k_has_exact_paper_counts() {
        let md = MolDyn::preset(MolDynPreset::MolDyn2K);
        assert_eq!(md.num_molecules, 2_916);
        assert_eq!(md.num_interactions(), 26_244);
    }

    #[test]
    fn preset_10k_has_exact_paper_counts() {
        let md = MolDyn::preset(MolDynPreset::MolDyn10K);
        assert_eq!(md.num_molecules, 10_976);
        assert_eq!(md.num_interactions(), 65_856);
    }

    #[test]
    fn interactions_are_distinct_ordered_pairs() {
        let md = MolDyn::fcc(4, 0.75);
        let mut seen = std::collections::HashSet::new();
        for (&a, &b) in md.ia1.iter().zip(&md.ia2) {
            assert!(a < b, "pairs stored lo<hi");
            assert!(seen.insert((a, b)), "duplicate pair");
            assert!((b as usize) < md.num_molecules);
        }
    }

    #[test]
    fn cutoff_is_respected() {
        let md = MolDyn::fcc(4, 0.75);
        for (&a, &b) in md.ia1.iter().zip(&md.ia2) {
            assert!(md.dist2(a as usize, b as usize) < 0.75 * 0.75 + 1e-12);
        }
    }

    #[test]
    fn small_perturbation_causes_small_churn() {
        let mut md = MolDyn::fcc(5, 0.75);
        let before = md.num_interactions();
        md.perturb(0.02, 123);
        let churn = md.rebuild_interactions();
        let after = md.num_interactions();
        // A 2% jitter flips only pairs near the cutoff shell.
        assert!(churn < before / 5, "churn {churn} of {before}");
        assert!((after as i64 - before as i64).unsigned_abs() as usize <= churn);
    }

    #[test]
    fn rebuild_without_motion_is_stable() {
        let mut md = MolDyn::fcc(4, 1.05);
        let churn = md.rebuild_interactions();
        assert_eq!(churn, 0, "rebuild of unchanged positions must be a no-op");
    }

    #[test]
    fn perturb_is_deterministic() {
        let mut a = MolDyn::fcc(3, 0.75);
        let mut b = MolDyn::fcc(3, 0.75);
        a.perturb(0.1, 9);
        b.perturb(0.1, 9);
        assert_eq!(a.pos, b.pos);
    }

    #[test]
    fn positions_stay_in_box_after_perturb() {
        let mut md = MolDyn::fcc(3, 0.75);
        md.perturb(0.5, 77);
        for p in &md.pos {
            for &pa in p.iter() {
                assert!(pa >= 0.0 && pa < md.box_side + 1e-12);
            }
        }
    }
}
