//! # workloads — dataset generators and partitioners for the reproduction
//!
//! The paper evaluates on three kernels whose inputs we do not have
//! (NAS CG matrices, CFD meshes from [5], and the Tseng/Han `moldyn`
//! datasets). This crate generates synthetic equivalents **at exactly the
//! paper's sizes** (see `DESIGN.md` §3 for the substitution argument):
//!
//! * [`nascg`] — sparse matrices shaped like NAS CG classes W/A/B
//!   (7 000 / 14 000 / 75 000 rows; ≈508 402 / 1 853 104 / 13 708 072
//!   nonzeros);
//! * [`mesh`] — unstructured meshes with the `euler` node/edge counts
//!   (2 800 / 17 377 and 9 428 / 59 863) and tunable index locality;
//! * [`moldyn`] — periodic FCC molecular configurations whose cutoff
//!   neighbor lists give *exactly* the paper's interaction counts
//!   (2 916 / 26 244 and 10 976 / 65 856), plus position perturbation and
//!   neighbor-list rebuild for adaptive experiments;
//! * [`partition`] — block and cyclic iteration distributions (the `2b`
//!   vs `2c` strategies of §5.4) and a recursive-coordinate-bisection
//!   partitioner for the classic partitioning-based baseline.
//!
//! All generators are deterministic given a seed.

pub mod mesh;
pub mod moldyn;
pub mod nascg;
pub mod partition;

pub use mesh::{Mesh, MeshPreset};
pub use moldyn::{MolDyn, MolDynPreset};
pub use nascg::{CgClass, SparseMatrix};
pub use partition::{distribute, hash_distribute_pairs, rcb_partition, Distribution};
