//! # workloads — dataset generators and partitioners for the reproduction
//!
//! The paper evaluates on three kernels whose inputs we do not have
//! (NAS CG matrices, CFD meshes from [5], and the Tseng/Han `moldyn`
//! datasets). This crate generates synthetic equivalents **at exactly the
//! paper's sizes** (see `DESIGN.md` §3 for the substitution argument):
//!
//! * [`nascg`] — sparse matrices shaped like NAS CG classes W/A/B
//!   (7 000 / 14 000 / 75 000 rows; ≈508 402 / 1 853 104 / 13 708 072
//!   nonzeros);
//! * [`mesh`] — unstructured meshes with the `euler` node/edge counts
//!   (2 800 / 17 377 and 9 428 / 59 863) and tunable index locality;
//! * [`moldyn`] — periodic FCC molecular configurations whose cutoff
//!   neighbor lists give *exactly* the paper's interaction counts
//!   (2 916 / 26 244 and 10 976 / 65 856), plus position perturbation and
//!   neighbor-list rebuild for adaptive experiments;
//! * [`partition`] — block and cyclic iteration distributions (the `2b`
//!   vs `2c` strategies of §5.4) and a recursive-coordinate-bisection
//!   partitioner for the classic partitioning-based baseline.
//!
//! Beyond the paper's kernels, three **skewed families** stress the
//! portion-imbalance regime the original inputs never reach (ROADMAP
//! item 4), all lowering to one common [`family::FamilySpec`] shape with
//! integer-exact weights:
//!
//! * [`powerlaw`] — degree-skewed graph analytics (PageRank / label
//!   propagation) with a Zipf exponent knob;
//! * [`hotkey`] — ML-shaped histogram / embedding-gradient scatter-add
//!   (long row streams, few hot keys);
//! * [`pic`] — particle-in-cell two-array deposition with a precomputed
//!   per-sweep churn schedule for `apply_updates`;
//! * [`oracle`] — the straight-line sequential golden oracle every
//!   engine must match bit for bit.
//!
//! All generators are deterministic given a seed.

pub mod family;
pub mod hotkey;
pub mod mesh;
pub mod moldyn;
pub mod nascg;
pub mod oracle;
pub mod partition;
pub mod pic;
pub mod powerlaw;

pub use family::{FamilyError, FamilySpec};
pub use hotkey::HotKeyScatter;
pub use mesh::{Mesh, MeshPreset};
pub use moldyn::{MolDyn, MolDynPreset};
pub use nascg::{CgClass, SparseMatrix};
pub use oracle::{oracle_reduce, oracle_reduce_raw};
pub use partition::{
    distribute, hash_distribute_pairs, rcb_partition, try_distribute, try_distribute_nonempty,
    try_hash_distribute_pairs, try_rcb_partition, Distribution, PartitionError,
};
pub use pic::PicDeck;
pub use powerlaw::PowerLawGraph;
