//! Hot-key scatter-add family: ML-shaped histogram / embedding-gradient
//! accumulation — many rows, few hot keys.
//!
//! Mirrors the access pattern of embedding-table gradient accumulation
//! and of group-by histogram kernels: a long stream of rows, each
//! updating one key's accumulator (optionally several gradient
//! components, i.e. several reduction arrays), where a small hot set of
//! keys absorbs most of the stream. `hot_frac = 0` is a flat histogram;
//! `hot_frac → 1` sends almost every row to the hot set — the extreme
//! portion-imbalance endpoint.

use harness::Rng64;

use crate::family::{FamilyError, FamilySpec};

/// A generated hot-key scatter-add deck.
#[derive(Debug, Clone)]
pub struct HotKeyScatter {
    pub num_keys: usize,
    /// Target key per row.
    pub keys: Vec<u32>,
    /// The hot key ids (pseudo-randomly spread across the key space so
    /// they straddle portion boundaries).
    pub hot: Vec<u32>,
    pub hot_frac: f64,
    /// Gradient components per key (reduction arrays).
    pub components: usize,
}

impl HotKeyScatter {
    /// Generate `rows` updates over `num_keys` keys; a `hot_frac`
    /// fraction of rows lands uniformly on `num_hot` hot keys, the rest
    /// uniformly on the whole key space. `components` is the number of
    /// reduction arrays (embedding gradient width).
    pub fn generate(
        num_keys: usize,
        rows: usize,
        num_hot: usize,
        hot_frac: f64,
        components: usize,
        seed: u64,
    ) -> Result<HotKeyScatter, FamilyError> {
        if num_keys == 0 {
            return Err(FamilyError::ZeroElements);
        }
        if rows == 0 {
            return Err(FamilyError::ZeroIterations);
        }
        if !(0.0..=1.0).contains(&hot_frac) {
            return Err(FamilyError::BadKnob("hot_frac must be in [0, 1]"));
        }
        if num_hot == 0 || num_hot > num_keys {
            return Err(FamilyError::BadKnob("num_hot must be in 1..=num_keys"));
        }
        if components == 0 || components > 8 {
            return Err(FamilyError::BadKnob("components must be in 1..=8"));
        }
        let mut rng = Rng64::seed_from_u64(seed ^ 0x1107_4B35);
        // Hot set: multiplicative-hash spread over the key space, so the
        // hot keys land in different portions rather than clustering at
        // the front.
        let mut hot = Vec::with_capacity(num_hot);
        let mut h = 0u64;
        while hot.len() < num_hot {
            let k = ((h.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) % num_keys as u64) as u32;
            if !hot.contains(&k) {
                hot.push(k);
            }
            h = h.wrapping_add(1);
        }
        let keys = (0..rows)
            .map(|_| {
                if rng.gen_bool(hot_frac) {
                    hot[rng.gen_range(0..num_hot as u32) as usize]
                } else {
                    rng.gen_range(0..num_keys as u32)
                }
            })
            .collect();
        Ok(HotKeyScatter {
            num_keys,
            keys,
            hot,
            hot_frac,
            components,
        })
    }

    /// Lower to the common family shape: 1 reference (the key), one
    /// reduction array per gradient component with coefficient `a+1`,
    /// integer weights in `0..1000`.
    pub fn to_family(&self, seed: u64) -> FamilySpec {
        let mut rng = Rng64::seed_from_u64(seed ^ 0x6E5B_ADD5);
        let weights: Vec<f64> = (0..self.keys.len())
            .map(|_| rng.gen_range(0..1000u32) as f64)
            .collect();
        FamilySpec {
            name: format!("hotkey-f{:.2}", self.hot_frac),
            num_elements: self.num_keys,
            indirection: vec![self.keys.clone()],
            weights,
            coeffs: vec![(0..self.components).map(|a| (a + 1) as f64).collect()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let a = HotKeyScatter::generate(500, 5_000, 4, 0.9, 2, 3).unwrap();
        let b = HotKeyScatter::generate(500, 5_000, 4, 0.9, 2, 3).unwrap();
        assert_eq!(a.keys, b.keys);
        assert_eq!(a.hot, b.hot);
    }

    #[test]
    fn hot_frac_controls_concentration() {
        let flat = HotKeyScatter::generate(500, 10_000, 4, 0.0, 1, 5).unwrap();
        let hot = HotKeyScatter::generate(500, 10_000, 4, 0.95, 1, 5).unwrap();
        let hot_hits = |d: &HotKeyScatter| {
            d.keys.iter().filter(|k| d.hot.contains(k)).count() as f64 / d.keys.len() as f64
        };
        assert!(hot_hits(&hot) > 0.9);
        assert!(hot_hits(&flat) < 0.1);
        assert!(hot.to_family(1).element_skew() > 10.0 * flat.to_family(1).element_skew());
    }

    #[test]
    fn family_is_well_formed() {
        let d = HotKeyScatter::generate(100, 2_000, 3, 0.5, 4, 9).unwrap();
        let f = d.to_family(9);
        assert_eq!(f.validate(), Ok(()));
        assert_eq!(f.num_refs(), 1);
        assert_eq!(f.num_arrays(), 4);
    }

    #[test]
    fn rejects_bad_knobs() {
        assert!(HotKeyScatter::generate(0, 10, 1, 0.5, 1, 1).is_err());
        assert!(HotKeyScatter::generate(10, 0, 1, 0.5, 1, 1).is_err());
        assert!(HotKeyScatter::generate(10, 10, 0, 0.5, 1, 1).is_err());
        assert!(HotKeyScatter::generate(10, 10, 11, 0.5, 1, 1).is_err());
        assert!(HotKeyScatter::generate(10, 10, 1, 1.5, 1, 1).is_err());
        assert!(HotKeyScatter::generate(10, 10, 1, 0.5, 0, 1).is_err());
    }
}
