//! Power-law graph analytics family: PageRank / label-propagation-shaped
//! edge loops with configurable degree skew.
//!
//! Endpoint popularity follows a Zipf-like law: node `v` is drawn with
//! probability proportional to `(v+1)^(-alpha)`. `alpha = 0` is a flat
//! (Erdős–Rényi-like) graph; `alpha ≈ 1.5–2.5` concentrates most edges
//! on a handful of hub nodes — the regime where per-portion reference
//! counts become wildly imbalanced and execution strategies diverge.
//! Each edge contributes `+w` to its destination's rank mass and `-w`
//! to its source (a push-style propagation step).

use harness::Rng64;

use crate::family::{FamilyError, FamilySpec};

/// A degree-skewed directed multigraph.
#[derive(Debug, Clone)]
pub struct PowerLawGraph {
    pub num_nodes: usize,
    /// Edge endpoints: `src[i] → dst[i]`.
    pub src: Vec<u32>,
    pub dst: Vec<u32>,
    /// The skew exponent the endpoints were drawn with.
    pub alpha: f64,
}

/// Sampler over `{0..n}` with `P(v) ∝ (v+1)^(-alpha)`, via inverse CDF
/// on a precomputed cumulative table (exact, deterministic).
struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    fn new(n: usize, alpha: f64) -> ZipfSampler {
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for v in 0..n {
            acc += ((v + 1) as f64).powf(-alpha);
            cdf.push(acc);
        }
        ZipfSampler { cdf }
    }

    fn draw(&self, rng: &mut Rng64) -> u32 {
        let total = *self.cdf.last().unwrap();
        let u = rng.gen_range(0.0..1.0) * total;
        // partition_point: first index with cdf > u.
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1) as u32
    }
}

impl PowerLawGraph {
    /// Generate `num_edges` edges over `num_nodes` nodes with skew
    /// exponent `alpha ≥ 0`. Destinations carry the skew (hubs receive);
    /// sources are drawn uniformly, so every node keeps sending work.
    pub fn generate(
        num_nodes: usize,
        num_edges: usize,
        alpha: f64,
        seed: u64,
    ) -> Result<PowerLawGraph, FamilyError> {
        if num_nodes == 0 {
            return Err(FamilyError::ZeroElements);
        }
        if num_edges == 0 {
            return Err(FamilyError::ZeroIterations);
        }
        if !(0.0..=8.0).contains(&alpha) {
            return Err(FamilyError::BadKnob("alpha must be in [0, 8]"));
        }
        let mut rng = Rng64::seed_from_u64(seed ^ 0x9C0F_FEE1);
        let zipf = ZipfSampler::new(num_nodes, alpha);
        let mut src = Vec::with_capacity(num_edges);
        let mut dst = Vec::with_capacity(num_edges);
        for _ in 0..num_edges {
            let s = rng.gen_range(0..num_nodes as u32);
            let mut d = zipf.draw(&mut rng);
            if d == s && num_nodes > 1 {
                // One resample against self-loops; a residual loop is
                // harmless (it contributes ±w to the same node).
                d = zipf.draw(&mut rng);
            }
            src.push(s);
            dst.push(d);
        }
        Ok(PowerLawGraph {
            num_nodes,
            src,
            dst,
            alpha,
        })
    }

    /// In-degree of every node.
    pub fn in_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_nodes];
        for &d in &self.dst {
            deg[d as usize] += 1;
        }
        deg
    }

    /// Lower to the common family shape: 2 references (src, dst), one
    /// rank-mass reduction array, integer weights in `0..1000`.
    pub fn to_family(&self, seed: u64) -> FamilySpec {
        let mut rng = Rng64::seed_from_u64(seed ^ 0x7A6E_5BAD);
        let weights: Vec<f64> = (0..self.src.len())
            .map(|_| rng.gen_range(0..1000u32) as f64)
            .collect();
        FamilySpec {
            name: format!("powerlaw-a{:.1}", self.alpha),
            num_elements: self.num_nodes,
            indirection: vec![self.src.clone(), self.dst.clone()],
            weights,
            // Push propagation: the destination gains what the source
            // sheds.
            coeffs: vec![vec![-1.0], vec![1.0]],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let a = PowerLawGraph::generate(100, 1_000, 1.5, 7).unwrap();
        let b = PowerLawGraph::generate(100, 1_000, 1.5, 7).unwrap();
        assert_eq!(a.src, b.src);
        assert_eq!(a.dst, b.dst);
        let c = PowerLawGraph::generate(100, 1_000, 1.5, 8).unwrap();
        assert_ne!(a.dst, c.dst);
    }

    #[test]
    fn alpha_controls_skew() {
        let flat = PowerLawGraph::generate(200, 4_000, 0.0, 3).unwrap();
        let skewed = PowerLawGraph::generate(200, 4_000, 2.0, 3).unwrap();
        let max_deg = |g: &PowerLawGraph| *g.in_degrees().iter().max().unwrap();
        assert!(
            max_deg(&skewed) > 4 * max_deg(&flat),
            "alpha=2 max in-degree {} vs flat {}",
            max_deg(&skewed),
            max_deg(&flat)
        );
        let ff = flat.to_family(1);
        let sf = skewed.to_family(1);
        assert!(sf.element_skew() > 2.0 * ff.element_skew());
    }

    #[test]
    fn family_is_well_formed() {
        let g = PowerLawGraph::generate(64, 500, 1.2, 11).unwrap();
        let f = g.to_family(11);
        assert_eq!(f.validate(), Ok(()));
        assert_eq!(f.num_refs(), 2);
        assert_eq!(f.num_arrays(), 1);
        assert_eq!(f.num_iterations(), 500);
    }

    #[test]
    fn rejects_bad_knobs() {
        assert!(PowerLawGraph::generate(0, 10, 1.0, 1).is_err());
        assert!(PowerLawGraph::generate(10, 0, 1.0, 1).is_err());
        assert!(PowerLawGraph::generate(10, 10, -1.0, 1).is_err());
    }
}
