//! Particle-in-cell deposition family: two-array reductions with
//! per-sweep churn.
//!
//! Particles live on a periodic 1-D ring of cells. Each particle
//! deposits into **two** cells (its own and its right neighbour — the
//! linear-weighting stencil collapsed to integer shares) and into two
//! reduction arrays (charge and current). Between sweeps a fraction of
//! the particles advances by its velocity, re-targeting its deposit
//! cells — the churn stream that feeds
//! `PreparedPhased::apply_updates` incrementally instead of forcing a
//! full re-inspection.
//!
//! The generator precomputes the whole trajectory deterministically:
//! [`PicDeck::initial`] is the sweep-0 family, [`PicDeck::step_updates`]
//! yields each step's `(iteration, new_refs)` list, and
//! [`PicDeck::family_at`] materializes the full family after any number
//! of steps (the re-prepare reference the incremental path must match).

use harness::Rng64;

use crate::family::{FamilyError, FamilySpec};

/// A particle-in-cell deck: initial state plus a precomputed churn
/// schedule.
#[derive(Debug, Clone)]
pub struct PicDeck {
    pub num_cells: usize,
    /// Cell of each particle at step 0.
    pub cell0: Vec<u32>,
    /// Signed per-step displacement of each particle (0 for the cold
    /// majority; churners move ±1..=3 cells per step).
    pub velocity: Vec<i32>,
    /// Integer charge per particle, in `0..1000`.
    pub charge: Vec<f64>,
    /// Number of precomputed steps.
    pub steps: usize,
    /// Fraction of particles with nonzero velocity.
    pub churn_frac: f64,
}

impl PicDeck {
    /// Generate `particles` particles over `num_cells` cells with a
    /// `churn_frac` fraction of movers, and precompute `steps` steps.
    pub fn generate(
        num_cells: usize,
        particles: usize,
        steps: usize,
        churn_frac: f64,
        seed: u64,
    ) -> Result<PicDeck, FamilyError> {
        if num_cells < 2 {
            return Err(FamilyError::ZeroElements);
        }
        if particles == 0 {
            return Err(FamilyError::ZeroIterations);
        }
        if !(0.0..=1.0).contains(&churn_frac) {
            return Err(FamilyError::BadKnob("churn_frac must be in [0, 1]"));
        }
        let mut rng = Rng64::seed_from_u64(seed ^ 0x0D1C_0DEC);
        let cell0: Vec<u32> = (0..particles)
            .map(|_| rng.gen_range(0..num_cells as u32))
            .collect();
        let velocity: Vec<i32> = (0..particles)
            .map(|_| {
                if rng.gen_bool(churn_frac) {
                    let mag = rng.gen_range(1..=3i32);
                    if rng.gen_bool(0.5) {
                        mag
                    } else {
                        -mag
                    }
                } else {
                    0
                }
            })
            .collect();
        let charge: Vec<f64> = (0..particles)
            .map(|_| rng.gen_range(0..1000u32) as f64)
            .collect();
        Ok(PicDeck {
            num_cells,
            cell0,
            velocity,
            charge,
            steps,
            churn_frac,
        })
    }

    /// Cell of particle `p` after `step` steps (periodic wrap).
    fn cell_at(&self, p: usize, step: usize) -> u32 {
        let n = self.num_cells as i64;
        let c = self.cell0[p] as i64 + self.velocity[p] as i64 * step as i64;
        c.rem_euclid(n) as u32
    }

    /// The two deposit targets of particle `p` at `step`: its cell and
    /// the right neighbour.
    fn refs_at(&self, p: usize, step: usize) -> [u32; 2] {
        let c = self.cell_at(p, step);
        [c, (c + 1) % self.num_cells as u32]
    }

    /// The full family after `step` steps — what a fresh prepare would
    /// see. `family_at(0)` is the initial deck.
    pub fn family_at(&self, step: usize) -> FamilySpec {
        let mut ia1 = Vec::with_capacity(self.cell0.len());
        let mut ia2 = Vec::with_capacity(self.cell0.len());
        for p in 0..self.cell0.len() {
            let [a, b] = self.refs_at(p, step);
            ia1.push(a);
            ia2.push(b);
        }
        FamilySpec {
            name: format!("pic-c{:.2}-s{step}", self.churn_frac),
            num_elements: self.num_cells,
            indirection: vec![ia1, ia2],
            weights: self.charge.clone(),
            // Charge deposit splits 2:1 between the cell and its right
            // neighbour; the current array counts signed flow.
            coeffs: vec![vec![2.0, 1.0], vec![1.0, -1.0]],
        }
    }

    /// Initial family (step 0).
    pub fn initial(&self) -> FamilySpec {
        self.family_at(0)
    }

    /// The churn going from `step` to `step + 1`, in
    /// `PreparedPhased::apply_updates` form: one `(iteration, new_refs)`
    /// entry per particle whose deposit targets change.
    pub fn step_updates(&self, step: usize) -> Vec<(usize, Vec<u32>)> {
        (0..self.cell0.len())
            .filter(|&p| self.velocity[p] != 0)
            .map(|p| {
                let [a, b] = self.refs_at(p, step + 1);
                (p, vec![a, b])
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let a = PicDeck::generate(64, 1_000, 4, 0.3, 5).unwrap();
        let b = PicDeck::generate(64, 1_000, 4, 0.3, 5).unwrap();
        assert_eq!(a.cell0, b.cell0);
        assert_eq!(a.velocity, b.velocity);
        assert_eq!(a.charge, b.charge);
    }

    #[test]
    fn updates_replay_to_the_next_family() {
        let d = PicDeck::generate(32, 400, 3, 0.4, 9).unwrap();
        for step in 0..d.steps {
            let mut fam = d.family_at(step);
            for (iter, refs) in d.step_updates(step) {
                fam.indirection[0][iter] = refs[0];
                fam.indirection[1][iter] = refs[1];
            }
            let next = d.family_at(step + 1);
            assert_eq!(fam.indirection, next.indirection, "step {step}");
        }
    }

    #[test]
    fn churn_volume_tracks_the_knob() {
        let calm = PicDeck::generate(64, 2_000, 1, 0.05, 2).unwrap();
        let wild = PicDeck::generate(64, 2_000, 1, 0.8, 2).unwrap();
        assert!(calm.step_updates(0).len() < 250);
        assert!(wild.step_updates(0).len() > 1_200);
    }

    #[test]
    fn family_is_well_formed_at_every_step() {
        let d = PicDeck::generate(48, 600, 3, 0.5, 7).unwrap();
        for step in 0..=d.steps {
            let f = d.family_at(step);
            assert_eq!(f.validate(), Ok(()), "step {step}");
            assert_eq!(f.num_refs(), 2);
            assert_eq!(f.num_arrays(), 2);
        }
    }

    #[test]
    fn rejects_bad_knobs() {
        assert!(PicDeck::generate(1, 10, 1, 0.5, 1).is_err());
        assert!(PicDeck::generate(10, 0, 1, 0.5, 1).is_err());
        assert!(PicDeck::generate(10, 10, 1, 1.5, 1).is_err());
    }
}
