//! Unstructured mesh generation for the `euler` kernel.
//!
//! The paper's `euler` meshes (from the CFD code of its reference [5])
//! are not available; we generate meshes with the same node and edge
//! counts and the locality structure typical of mesh-generator output:
//! nodes numbered along a space-filling (row-major, jittered) order, and
//! edges connecting index-nearby nodes plus a small fraction of longer
//! edges. Phase-assignment statistics and cache behaviour — the two
//! things the evaluation depends on — are functions of exactly these
//! properties.

use harness::Rng64;

/// The two euler datasets of §5.4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeshPreset {
    /// "2K mesh": 2 800 nodes, 17 377 edges.
    Euler2K,
    /// "10K mesh": 9 428 nodes, 59 863 edges.
    Euler10K,
}

impl MeshPreset {
    pub fn nodes(&self) -> usize {
        match self {
            MeshPreset::Euler2K => 2_800,
            MeshPreset::Euler10K => 9_428,
        }
    }

    pub fn edges(&self) -> usize {
        match self {
            MeshPreset::Euler2K => 17_377,
            MeshPreset::Euler10K => 59_863,
        }
    }

    pub fn label(&self) -> &'static str {
        match self {
            MeshPreset::Euler2K => "euler-2.8K/17.4K",
            MeshPreset::Euler10K => "euler-9.4K/59.9K",
        }
    }
}

/// An unstructured mesh: nodes with 2-D coordinates and undirected edges
/// listed as `(node1, node2)` pairs — the indirection array `IA` of the
/// paper's Figure 1.
#[derive(Debug, Clone)]
pub struct Mesh {
    pub num_nodes: usize,
    /// Edge endpoint arrays (structure-of-arrays): `ia1[i]`, `ia2[i]` are
    /// the two nodes of edge `i`.
    pub ia1: Vec<u32>,
    pub ia2: Vec<u32>,
    /// Node coordinates (used by the RCB baseline partitioner).
    pub coords: Vec<[f64; 3]>,
}

impl Mesh {
    pub fn num_edges(&self) -> usize {
        self.ia1.len()
    }

    /// Generate one of the paper's euler datasets: a 3-D mesh (the CFD
    /// code of the paper's reference [5] works on 3-D unstructured
    /// meshes), whose row-major numbering yields index spans of order
    /// `n^(2/3)` — local enough that consecutive edges reference nearby
    /// nodes (the source of block-distribution load imbalance, §5.4.2),
    /// yet wide enough that most references cross portion boundaries on
    /// larger machines.
    pub fn preset(p: MeshPreset, seed: u64) -> Mesh {
        Mesh::generate3d(p.nodes(), p.edges(), seed)
    }

    /// Generate a mesh with exactly `num_nodes` nodes and `num_edges`
    /// distinct edges (no self-loops). Deterministic in `seed`.
    ///
    /// Construction: nodes sit on a jittered `√n × √n` grid, numbered
    /// row-major. A connectivity skeleton of grid edges is laid first,
    /// then short-range extra edges (geometric index offsets) fill up to
    /// the target, giving the ~12 average degree of the paper's meshes
    /// while keeping endpoints index-local.
    pub fn generate(num_nodes: usize, num_edges: usize, seed: u64) -> Mesh {
        assert!(num_nodes >= 2, "need at least two nodes");
        let max_edges = num_nodes * (num_nodes - 1) / 2;
        assert!(num_edges <= max_edges, "more edges than node pairs");
        let mut rng = Rng64::seed_from_u64(seed);
        let side = (num_nodes as f64).sqrt().ceil() as usize;

        let mut coords = Vec::with_capacity(num_nodes);
        for i in 0..num_nodes {
            let (r, c) = (i / side, i % side);
            coords.push([
                c as f64 + rng.gen_range(-0.3..0.3),
                r as f64 + rng.gen_range(-0.3..0.3),
                0.0,
            ]);
        }

        let mut seen = std::collections::HashSet::with_capacity(num_edges * 2);
        let mut ia1 = Vec::with_capacity(num_edges);
        let mut ia2 = Vec::with_capacity(num_edges);
        let push = |a: usize,
                    b: usize,
                    seen: &mut std::collections::HashSet<u64>,
                    ia1: &mut Vec<u32>,
                    ia2: &mut Vec<u32>|
         -> bool {
            if a == b || a >= num_nodes || b >= num_nodes {
                return false;
            }
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            if !seen.insert((lo as u64) << 32 | hi as u64) {
                return false;
            }
            ia1.push(lo as u32);
            ia2.push(hi as u32);
            true
        };

        // Skeleton: right + down grid neighbors (keeps the mesh connected
        // in the index-locality sense).
        'skeleton: for i in 0..num_nodes {
            for off in [1usize, side] {
                if ia1.len() == num_edges {
                    break 'skeleton;
                }
                if let Some(j) = i.checked_add(off) {
                    push(i, j, &mut seen, &mut ia1, &mut ia2);
                }
            }
        }

        // Fill: random short-range edges; offset magnitude is geometric so
        // most edges stay index-local (mesh-generator-like numbering).
        while ia1.len() < num_edges {
            let a = rng.gen_range(0..num_nodes);
            // Geometric-ish offset: 1 + side * 2^u with random sign.
            let mag = 1 + rng.gen_range(0..4usize) * rng.gen_range(1..=side / 2 + 1);
            let b = if rng.gen_bool(0.5) {
                a.saturating_add(mag)
            } else {
                a.saturating_sub(mag)
            };
            push(a, b.min(num_nodes - 1), &mut seen, &mut ia1, &mut ia2);
        }

        Mesh {
            num_nodes,
            ia1,
            ia2,
            coords,
        }
    }

    /// Generate a 3-D mesh with exactly `num_nodes` nodes and
    /// `num_edges` distinct edges. Nodes sit on a jittered cube grid
    /// numbered x-fastest; edges connect 3-D-adjacent nodes (skeleton)
    /// plus random short-range-in-space neighbours, so index spans
    /// cluster at `{1, side, side²}`.
    pub fn generate3d(num_nodes: usize, num_edges: usize, seed: u64) -> Mesh {
        assert!(num_nodes >= 8, "need at least 8 nodes");
        let max_edges = num_nodes * (num_nodes - 1) / 2;
        assert!(num_edges <= max_edges, "more edges than node pairs");
        let mut rng = Rng64::seed_from_u64(seed ^ 0x3D);
        let side = (num_nodes as f64).cbrt().ceil() as usize;

        let mut coords = Vec::with_capacity(num_nodes);
        for i in 0..num_nodes {
            let (z, rem) = (i / (side * side), i % (side * side));
            let (y, x) = (rem / side, rem % side);
            coords.push([
                x as f64 + rng.gen_range(-0.3..0.3),
                y as f64 + rng.gen_range(-0.3..0.3),
                z as f64 + rng.gen_range(-0.3..0.3),
            ]);
        }

        let mut seen = std::collections::HashSet::with_capacity(num_edges * 2);
        let mut ia1 = Vec::with_capacity(num_edges);
        let mut ia2 = Vec::with_capacity(num_edges);
        let push = |a: usize,
                    b: usize,
                    seen: &mut std::collections::HashSet<u64>,
                    ia1: &mut Vec<u32>,
                    ia2: &mut Vec<u32>|
         -> bool {
            if a == b || a >= num_nodes || b >= num_nodes {
                return false;
            }
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            if !seen.insert((lo as u64) << 32 | hi as u64) {
                return false;
            }
            ia1.push(lo as u32);
            ia2.push(hi as u32);
            true
        };

        // Skeleton: the three axis neighbours.
        'skeleton: for i in 0..num_nodes {
            for off in [1usize, side, side * side] {
                if ia1.len() == num_edges {
                    break 'skeleton;
                }
                if let Some(j) = i.checked_add(off) {
                    push(i, j, &mut seen, &mut ia1, &mut ia2);
                }
            }
        }

        // Fill: spatially short, index-wide edges (diagonals, distance-2
        // neighbours) — tetrahedralization-like connectivity.
        while ia1.len() < num_edges {
            let a = rng.gen_range(0..num_nodes);
            let dx = rng.gen_range(-2i64..=2);
            let dy = rng.gen_range(-2i64..=2);
            let dz = rng.gen_range(-2i64..=2);
            let b = a as i64 + dx + dy * side as i64 + dz * (side * side) as i64;
            if b < 0 {
                continue;
            }
            push(
                a,
                (b as usize).min(num_nodes - 1),
                &mut seen,
                &mut ia1,
                &mut ia2,
            );
        }

        Mesh {
            num_nodes,
            ia1,
            ia2,
            coords,
        }
    }

    /// Renumber the nodes with a random permutation (deterministic in
    /// `seed`), preserving the mesh structure.
    ///
    /// Unstructured meshes straight out of a generator or refinement
    /// pipeline — like the paper's CFD meshes — carry essentially random
    /// node numbering unless explicitly reordered (RCM etc.), which the
    /// paper's strategy pointedly does *not* do. The paper presets use
    /// this; the ordered variant exists for the locality ablation bench.
    pub fn shuffled(mut self, seed: u64) -> Mesh {
        let mut rng = Rng64::seed_from_u64(seed ^ 0xC0FFEE);
        let n = self.num_nodes;
        let mut perm: Vec<u32> = (0..n as u32).collect();
        // Fisher–Yates.
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        let mut coords = vec![[0.0; 3]; n];
        for (old, &new) in perm.iter().enumerate() {
            coords[new as usize] = self.coords[old];
        }
        self.coords = coords;
        for e in self.ia1.iter_mut().chain(self.ia2.iter_mut()) {
            *e = perm[*e as usize];
        }
        self
    }

    /// Mean index distance `|ia1 - ia2|` — the locality signature.
    pub fn mean_index_span(&self) -> f64 {
        if self.ia1.is_empty() {
            return 0.0;
        }
        let s: u64 = self
            .ia1
            .iter()
            .zip(&self.ia2)
            .map(|(&a, &b)| u64::from(a.abs_diff(b)))
            .sum();
        s as f64 / self.ia1.len() as f64
    }

    /// Degree of each node.
    pub fn degrees(&self) -> Vec<u32> {
        let mut d = vec![0u32; self.num_nodes];
        for (&a, &b) in self.ia1.iter().zip(&self.ia2) {
            d[a as usize] += 1;
            d[b as usize] += 1;
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_preset_sizes() {
        let m = Mesh::preset(MeshPreset::Euler2K, 7);
        assert_eq!(m.num_nodes, 2_800);
        assert_eq!(m.num_edges(), 17_377);
        let m = Mesh::preset(MeshPreset::Euler10K, 7);
        assert_eq!(m.num_nodes, 9_428);
        assert_eq!(m.num_edges(), 59_863);
    }

    #[test]
    fn edges_are_distinct_and_loop_free() {
        let m = Mesh::generate(500, 3_000, 11);
        let mut seen = std::collections::HashSet::new();
        for (&a, &b) in m.ia1.iter().zip(&m.ia2) {
            assert_ne!(a, b, "self-loop");
            assert!(a < 500 && b < 500, "endpoint out of range");
            assert!(seen.insert((a.min(b), a.max(b))), "duplicate edge {a}-{b}");
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = Mesh::generate(300, 1_000, 5);
        let b = Mesh::generate(300, 1_000, 5);
        assert_eq!(a.ia1, b.ia1);
        assert_eq!(a.ia2, b.ia2);
        let c = Mesh::generate(300, 1_000, 6);
        assert_ne!(a.ia1, c.ia1);
    }

    #[test]
    fn edges_are_index_local_on_average() {
        let m = Mesh::preset(MeshPreset::Euler2K, 1);
        // Mean endpoint index distance far below random (which would be
        // ~n/3 ≈ 933).
        assert!(
            m.mean_index_span() < 300.0,
            "span {} too large",
            m.mean_index_span()
        );
    }

    #[test]
    fn every_node_is_touched() {
        let m = Mesh::preset(MeshPreset::Euler2K, 3);
        let d = m.degrees();
        let untouched = d.iter().filter(|&&x| x == 0).count();
        assert_eq!(untouched, 0);
        let mean = d.iter().map(|&x| x as f64).sum::<f64>() / d.len() as f64;
        assert!((mean - 2.0 * 17_377.0 / 2_800.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "more edges than node pairs")]
    fn rejects_impossible_edge_count() {
        Mesh::generate(4, 10, 0);
    }
}
