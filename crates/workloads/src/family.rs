//! The common shape of the skewed workload families.
//!
//! The three families of ROADMAP item 4 (power-law graph analytics,
//! hot-key histogram / embedding-gradient scatter-add, particle-in-cell
//! deposition) differ in *where their indirection points*, not in what
//! the loop body computes. Each generator therefore lowers to one
//! [`FamilySpec`]: indirection arrays plus integer-valued per-iteration
//! weights and a small integer coefficient matrix. The contribution of
//! iteration `i` through reference `r` to reduction array `a` is
//!
//! ```text
//! x[a][ind[r][i]] += coeffs[r][a] · w[i]
//! ```
//!
//! Every partial sum is an exactly-representable integer, so any
//! execution strategy — whatever order it sums in — must reproduce the
//! straight-line oracle ([`crate::oracle`]) **bit for bit**. That is
//! what makes cross-engine `assert_eq!` on `f64` meaningful.

/// Why a family request is rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FamilyError {
    /// A family needs at least one reduction element.
    ZeroElements,
    /// A family needs at least one iteration.
    ZeroIterations,
    /// A knob outside its domain (e.g. a hot fraction not in `[0, 1]`).
    BadKnob(&'static str),
}

impl std::fmt::Display for FamilyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FamilyError::ZeroElements => write!(f, "family needs at least 1 element"),
            FamilyError::ZeroIterations => write!(f, "family needs at least 1 iteration"),
            FamilyError::BadKnob(k) => write!(f, "family knob out of domain: {k}"),
        }
    }
}

impl std::error::Error for FamilyError {}

/// One generated irregular-reduction workload, ready to lower onto any
/// engine (the `kernels` crate wraps it in an `EdgeKernel`) and to feed
/// the golden oracle.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilySpec {
    /// Family + knob label, used in figures and JSON reports.
    pub name: String,
    /// Size of each reduction array.
    pub num_elements: usize,
    /// `indirection[r][i]` = element hit by reference `r` of iteration
    /// `i`. All arrays have equal length (the iteration count).
    pub indirection: Vec<Vec<u32>>,
    /// Integer-valued weight per iteration (stored as `f64`).
    pub weights: Vec<f64>,
    /// `coeffs[r][a]` = signed integer coefficient applied to `w[i]`
    /// for reference `r`, reduction array `a`.
    pub coeffs: Vec<Vec<f64>>,
}

impl FamilySpec {
    /// Reduction references per iteration.
    pub fn num_refs(&self) -> usize {
        self.indirection.len()
    }

    /// Reduction arrays.
    pub fn num_arrays(&self) -> usize {
        self.coeffs.first().map_or(0, |c| c.len())
    }

    /// Loop iterations.
    pub fn num_iterations(&self) -> usize {
        self.indirection.first().map_or(0, |a| a.len())
    }

    /// Structural sanity: equal-length indirection arrays, one weight
    /// per iteration, a rectangular coefficient matrix, and in-range
    /// element references. The generators uphold this by construction;
    /// the harness re-checks it on every generated deck.
    pub fn validate(&self) -> Result<(), FamilyError> {
        if self.num_elements == 0 {
            return Err(FamilyError::ZeroElements);
        }
        let iters = self.num_iterations();
        if iters == 0 {
            return Err(FamilyError::ZeroIterations);
        }
        if self.weights.len() != iters {
            return Err(FamilyError::BadKnob("weights length"));
        }
        if self.coeffs.len() != self.num_refs() || self.num_arrays() == 0 {
            return Err(FamilyError::BadKnob("coeffs shape"));
        }
        for c in &self.coeffs {
            if c.len() != self.num_arrays() {
                return Err(FamilyError::BadKnob("coeffs shape"));
            }
            if c.iter().any(|v| v.fract() != 0.0 || v.abs() > 16.0) {
                return Err(FamilyError::BadKnob("coefficients must be small integers"));
            }
        }
        if self.weights.iter().any(|w| w.fract() != 0.0) {
            return Err(FamilyError::BadKnob("weights must be integer-valued"));
        }
        for arr in &self.indirection {
            if arr.len() != iters {
                return Err(FamilyError::BadKnob("indirection lengths"));
            }
            if arr.iter().any(|&e| e as usize >= self.num_elements) {
                return Err(FamilyError::BadKnob("indirection out of range"));
            }
        }
        Ok(())
    }

    /// Empirical element-level skew of the reference stream: the maximum
    /// number of references landing on one element divided by the mean
    /// over *referenced* elements. `1.0` is perfectly flat; hot-key
    /// decks reach into the hundreds.
    pub fn element_skew(&self) -> f64 {
        let mut counts = vec![0u64; self.num_elements];
        for arr in &self.indirection {
            for &e in arr {
                counts[e as usize] += 1;
            }
        }
        let referenced: Vec<u64> = counts.into_iter().filter(|&c| c > 0).collect();
        if referenced.is_empty() {
            return 1.0;
        }
        let max = *referenced.iter().max().unwrap() as f64;
        let mean = referenced.iter().sum::<u64>() as f64 / referenced.len() as f64;
        max / mean
    }

    /// Number of distinct elements the indirection touches.
    pub fn distinct_elements(&self) -> usize {
        let mut seen = vec![false; self.num_elements];
        let mut n = 0usize;
        for arr in &self.indirection {
            for &e in arr {
                if !seen[e as usize] {
                    seen[e as usize] = true;
                    n += 1;
                }
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FamilySpec {
        FamilySpec {
            name: "tiny".into(),
            num_elements: 4,
            indirection: vec![vec![0, 1, 0], vec![2, 3, 2]],
            weights: vec![1.0, 2.0, 3.0],
            coeffs: vec![vec![1.0, 2.0], vec![-1.0, 1.0]],
        }
    }

    #[test]
    fn validate_accepts_well_formed() {
        assert_eq!(tiny().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_malformed() {
        let mut f = tiny();
        f.weights.pop();
        assert!(f.validate().is_err());
        let mut f = tiny();
        f.indirection[1][0] = 9;
        assert!(f.validate().is_err());
        let mut f = tiny();
        f.weights[0] = 0.5;
        assert!(f.validate().is_err());
        let mut f = tiny();
        f.num_elements = 0;
        assert!(f.validate().is_err());
    }

    #[test]
    fn skew_and_distinct() {
        let f = tiny();
        // Element hits: 0→2, 1→1, 2→2, 3→1; max 2, mean 1.5.
        assert!((f.element_skew() - 2.0 / 1.5).abs() < 1e-12);
        assert_eq!(f.distinct_elements(), 4);
    }
}
