//! # harness — in-tree, zero-dependency test infrastructure
//!
//! This workspace builds **hermetically**: no external crates, ever
//! (`DESIGN.md`, "Hermetic build policy"). The pieces of `rand`,
//! `proptest`, and `criterion` the repository actually needs live here
//! instead:
//!
//! * [`rng`] — SplitMix64-seeded xoshiro256++ with the distribution
//!   helpers the workload generators use ([`Rng64::gen_range`],
//!   [`Rng64::gen_bool`], [`Rng64::shuffle`]);
//! * [`prop`] — a property-testing harness with choice-stream
//!   shrinking and explicit-seed replay ([`prop::check`],
//!   [`prop_assert!`]);
//! * [`bench`] — warmup + timed iterations with median/MAD statistics
//!   and CSV output ([`bench::Suite`]).
//!
//! Everything is deterministic given a seed; nothing reads OS entropy.

pub mod bench;
pub mod prop;
pub mod rng;

pub use rng::Rng64;
