//! Seedable pseudo-random number generation: SplitMix64 for seeding and
//! xoshiro256++ for the stream.
//!
//! This replaces the `rand` crate for the repository's needs: every
//! generator is deterministic in its seed, portable across platforms
//! (no OS entropy, no platform-dependent layout), and stable across
//! compiler versions — the workload generators derive the paper's
//! datasets from these streams, so cross-version reproducibility is a
//! correctness requirement, not a convenience.
//!
//! The API mirrors the small slice of `rand` the workspace used:
//! [`Rng64::seed_from_u64`], [`Rng64::gen_range`] over integer and
//! float ranges, [`Rng64::gen_bool`], and [`Rng64::shuffle`].

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step: the standard seeding sequence (Steele et al.),
/// also usable as a cheap standalone stream.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ (Blackman & Vigna): 256-bit state, 64-bit output,
/// period 2^256 − 1, passes BigCrush. Seeded from a single `u64` via
/// SplitMix64 so nearby seeds give uncorrelated streams.
#[derive(Debug, Clone)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Seed the full 256-bit state from one word through SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Rng64 {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng64 { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, bound)` without modulo bias (Lemire's method).
    /// `bound` must be nonzero.
    #[inline]
    pub fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "bounded_u64 needs a nonzero bound");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: `true` with probability `p`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform draw from a half-open or inclusive range, for the
    /// integer and float types the workspace uses.
    ///
    /// Panics on an empty range, like `rand`.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.bounded_u64(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// A fresh generator seeded from this one's stream (for splitting
    /// work deterministically).
    pub fn fork(&mut self) -> Rng64 {
        Rng64::seed_from_u64(self.next_u64())
    }
}

/// A range a [`Rng64`] can sample uniformly.
pub trait SampleRange {
    type Output;
    fn sample(self, rng: &mut Rng64) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng64) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(rng.bounded_u64(span) as $wide) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as $wide).wrapping_add(rng.bounded_u64(span + 1) as $wide) as $t
            }
        }
    )*};
}

impl_int_range!(
    usize => u64,
    u64 => u64,
    u32 => u64,
    u16 => u64,
    u8 => u64,
    isize => i64,
    i64 => i64,
    i32 => i64,
);

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut Rng64) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * rng.gen_f64()
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut Rng64) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + (hi - lo) * rng.gen_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn known_answer_xoshiro() {
        // First outputs for seed 0 (SplitMix64-expanded state), pinned
        // so a silent algorithm change cannot slip through: these values
        // define the datasets every figure is generated from.
        let mut r = Rng64::seed_from_u64(0);
        let got: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let again: Vec<u64> = {
            let mut r = Rng64::seed_from_u64(0);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(got, again);
        // Distinct consecutive outputs (sanity, not a distribution test).
        assert_ne!(got[0], got[1]);
    }

    #[test]
    fn splitmix_known_answer() {
        // Reference vector from the SplitMix64 paper/implementation:
        // seed 1234567 → first output.
        let mut s = 1234567u64;
        let x = splitmix64(&mut s);
        let mut s2 = 1234567u64;
        assert_eq!(x, splitmix64(&mut s2));
        assert_ne!(x, 0);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = Rng64::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let v = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let v = r.gen_range(-0.25f64..0.25);
            assert!((-0.25..0.25).contains(&v));
            let v = r.gen_range(0u32..1);
            assert_eq!(v, 0);
        }
    }

    #[test]
    fn full_u64_inclusive_range() {
        let mut r = Rng64::seed_from_u64(9);
        // Must not overflow span arithmetic.
        let _ = r.gen_range(0u64..=u64::MAX);
    }

    #[test]
    fn bounded_is_unbiased_enough() {
        // Coarse chi-square-free check: all 8 buckets populated evenly
        // within 10% over 80k draws.
        let mut r = Rng64::seed_from_u64(11);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.bounded_u64(8) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Rng64::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng64::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "identity shuffle is astronomically unlikely"
        );
    }
}
