//! A minimal benchmark harness: warmup, N timed iterations, and
//! robust statistics (median and MAD) — the slice of `criterion` the
//! micro-benchmarks use, with zero dependencies.
//!
//! Results print to stdout in a fixed-width table and can be appended
//! as CSV (`name,iters,median_ns,mad_ns,per_element_ns,elements`),
//! following the repository convention of machine-readable output
//! under `bench_results/`.
//!
//! Environment knobs: `BENCH_ITERS` overrides the timed iteration
//! count, `BENCH_WARMUP` the warmup count, `BENCH_CSV` a path to
//! append CSV rows to.

use std::time::Instant;

/// Configuration for one benchmark run.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    pub warmup_iters: u32,
    pub timed_iters: u32,
}

impl Default for BenchConfig {
    fn default() -> Self {
        let parse = |k: &str, d: u32| {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(d)
        };
        BenchConfig {
            warmup_iters: parse("BENCH_WARMUP", 3),
            timed_iters: parse("BENCH_ITERS", 20),
        }
    }
}

/// Statistics over the timed iterations, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct Stats {
    pub name: String,
    pub iters: u32,
    pub median_ns: f64,
    /// Median absolute deviation — robust spread.
    pub mad_ns: f64,
    pub min_ns: f64,
    pub max_ns: f64,
    /// Elements processed per iteration (for throughput), if declared.
    pub elements: Option<u64>,
}

impl Stats {
    /// Nanoseconds per declared element.
    pub fn per_element_ns(&self) -> Option<f64> {
        self.elements.map(|e| self.median_ns / e as f64)
    }
}

fn median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A named group of benchmarks sharing a config, mirroring the
/// criterion `benchmark_group` idiom the micro bench file used.
pub struct Suite {
    group: String,
    config: BenchConfig,
    elements: Option<u64>,
    results: Vec<Stats>,
}

impl Suite {
    pub fn new(group: &str) -> Suite {
        println!("== bench group: {group} ==");
        Suite {
            group: group.to_string(),
            config: BenchConfig::default(),
            elements: None,
            results: Vec::new(),
        }
    }

    /// Declare elements-per-iteration for subsequent benches
    /// (throughput reporting).
    pub fn throughput(&mut self, elements: u64) -> &mut Self {
        self.elements = Some(elements);
        self
    }

    /// Time `routine`, which returns a value that is black-boxed to
    /// keep the optimizer honest.
    pub fn bench<T>(&mut self, name: &str, mut routine: impl FnMut() -> T) -> &Stats {
        self.bench_with_setup(name, || (), |()| routine())
    }

    /// Time `routine` over fresh input from `setup`; setup time is
    /// excluded (the criterion `iter_batched` idiom).
    pub fn bench_with_setup<I, T>(
        &mut self,
        name: &str,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> T,
    ) -> &Stats {
        let full = format!("{}/{}", self.group, name);
        for _ in 0..self.config.warmup_iters {
            let input = setup();
            std::hint::black_box(routine(std::hint::black_box(input)));
        }
        let mut samples = Vec::with_capacity(self.config.timed_iters as usize);
        for _ in 0..self.config.timed_iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(std::hint::black_box(input)));
            samples.push(start.elapsed().as_secs_f64() * 1e9);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let med = median(&samples);
        let mut devs: Vec<f64> = samples.iter().map(|s| (s - med).abs()).collect();
        devs.sort_by(|a, b| a.total_cmp(b));
        let stats = Stats {
            name: full.clone(),
            iters: self.config.timed_iters,
            median_ns: med,
            mad_ns: median(&devs),
            min_ns: samples.first().copied().unwrap_or(0.0),
            max_ns: samples.last().copied().unwrap_or(0.0),
            elements: self.elements,
        };
        let throughput = stats
            .per_element_ns()
            .map(|ns| format!("  ({:.1} ns/elem)", ns))
            .unwrap_or_default();
        println!(
            "  {:<40} median {:>12}  mad {:>10}  [{} .. {}]{}",
            stats.name,
            fmt_ns(stats.median_ns),
            fmt_ns(stats.mad_ns),
            fmt_ns(stats.min_ns),
            fmt_ns(stats.max_ns),
            throughput,
        );
        self.results.push(stats);
        self.results.last().unwrap()
    }

    /// Append this group's rows to the CSV at `BENCH_CSV`, if set.
    /// Schema: `name,iters,median_ns,mad_ns,per_element_ns,elements`.
    pub fn finish(self) -> Vec<Stats> {
        if let Ok(path) = std::env::var("BENCH_CSV") {
            if let Err(e) = append_csv(&path, &self.results) {
                eprintln!("warning: could not write {path}: {e}");
            }
        }
        self.results
    }
}

fn append_csv(path: &str, rows: &[Stats]) -> std::io::Result<()> {
    use std::io::Write as _;
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let header_needed = std::fs::metadata(path)
        .map(|m| m.len() == 0)
        .unwrap_or(true);
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    if header_needed {
        writeln!(f, "name,iters,median_ns,mad_ns,per_element_ns,elements")?;
    }
    for r in rows {
        writeln!(
            f,
            "{},{},{:.1},{:.1},{},{}",
            r.name,
            r.iters,
            r.median_ns,
            r.mad_ns,
            r.per_element_ns()
                .map(|v| format!("{v:.3}"))
                .unwrap_or_default(),
            r.elements.map(|e| e.to_string()).unwrap_or_default(),
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_and_mad() {
        assert_eq!(median(&[1.0, 2.0, 100.0]), 2.0);
        assert_eq!(median(&[1.0, 2.0, 3.0, 100.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn bench_produces_sane_stats() {
        let mut suite = Suite::new("selftest");
        suite.throughput(1000);
        let s = suite.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                acc = acc.wrapping_add(std::hint::black_box(i));
            }
            acc
        });
        assert!(s.median_ns > 0.0);
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.max_ns);
        assert!(s.per_element_ns().unwrap() > 0.0);
        let results = suite.finish();
        assert_eq!(results.len(), 1);
    }

    #[test]
    fn setup_excluded_from_timing() {
        let mut suite = Suite::new("setup");
        let s = suite.bench_with_setup(
            "consume_vec",
            || vec![1u8; 1024],
            |v| v.iter().map(|&b| b as u64).sum::<u64>(),
        );
        assert!(s.iters > 0);
    }

    #[test]
    fn csv_append_roundtrip() {
        let dir = std::env::temp_dir().join("harness_bench_csv_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("out.csv");
        let rows = vec![Stats {
            name: "g/x".into(),
            iters: 5,
            median_ns: 123.4,
            mad_ns: 1.5,
            min_ns: 120.0,
            max_ns: 130.0,
            elements: Some(10),
        }];
        append_csv(path.to_str().unwrap(), &rows).unwrap();
        append_csv(path.to_str().unwrap(), &rows).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "one header + two rows: {text}");
        assert!(lines[0].starts_with("name,iters"));
        assert!(lines[1].starts_with("g/x,5,123.4"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
