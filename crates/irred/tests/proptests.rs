//! Property tests for the phased executors: for arbitrary problem
//! shapes (element count, iteration count, reference arity `m`,
//! reduction-group width `R`, indirection contents) and arbitrary
//! strategies `(P, k, distribution)`, the phased execution equals the
//! sequential reference.

use std::sync::Arc;

use earth_model::sim::SimConfig;
use irred::{
    approx_eq, seq_reduction, Distribution, EdgeKernel, PhasedGather, PhasedReduction, PhasedSpec,
    GatherSpec, StrategyConfig,
};
use proptest::prelude::*;
use workloads::SparseMatrix;

/// A kernel with configurable arity: contribution through ref `r` to
/// array `a` is `(r+1)·(a+1)·w[i]` (sign alternating by ref).
struct ArityKernel {
    m: usize,
    r_arrays: usize,
    weights: Arc<Vec<f64>>,
}

impl EdgeKernel for ArityKernel {
    fn num_refs(&self) -> usize {
        self.m
    }
    fn num_arrays(&self) -> usize {
        self.r_arrays
    }
    fn contrib(&self, _read: &[Vec<f64>], iter: usize, _elems: &[u32], out: &mut [f64]) {
        let w = self.weights[iter];
        for r in 0..self.m {
            let sign = if r % 2 == 0 { 1.0 } else { -1.0 };
            for a in 0..self.r_arrays {
                out[r * self.r_arrays + a] = sign * (r + 1) as f64 * (a + 1) as f64 * w;
            }
        }
    }
    fn flops_per_iter(&self) -> u64 {
        (self.m * self.r_arrays) as u64 * 2
    }
}

#[derive(Debug, Clone)]
struct Shape {
    n: usize,
    e: usize,
    m: usize,
    r_arrays: usize,
    procs: usize,
    k: usize,
    dist: Distribution,
    sweeps: usize,
    seed: u64,
}

fn shape() -> impl Strategy<Value = Shape> {
    (
        8usize..200,
        0usize..400,
        1usize..=3,
        1usize..=3,
        1usize..=6,
        1usize..=4,
        prop::bool::ANY,
        1usize..=3,
        any::<u64>(),
    )
        .prop_map(|(n, e, m, r_arrays, procs, k, cyclic, sweeps, seed)| Shape {
            n: n.max(procs * 4), // keep portions non-degenerate
            e,
            m,
            r_arrays,
            procs,
            k,
            dist: if cyclic { Distribution::Cyclic } else { Distribution::Block },
            sweeps,
            seed,
        })
}

fn build_spec(s: &Shape) -> PhasedSpec<ArityKernel> {
    let mut x = s.seed | 1;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let indirection: Vec<Vec<u32>> = (0..s.m)
        .map(|_| (0..s.e).map(|_| (next() % s.n as u64) as u32).collect())
        .collect();
    PhasedSpec {
        kernel: Arc::new(ArityKernel {
            m: s.m,
            r_arrays: s.r_arrays,
            weights: Arc::new((0..s.e).map(|_| (next() % 1000) as f64 / 13.0).collect()),
        }),
        num_elements: s.n,
        indirection: Arc::new(indirection),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn phased_equals_sequential(s in shape()) {
        let spec = build_spec(&s);
        let strat = StrategyConfig::new(s.procs, s.k, s.dist, s.sweeps);
        let seq = seq_reduction(&spec, s.sweeps, SimConfig::default());
        let r = PhasedReduction::run_sim(&spec, &strat, SimConfig::default());
        for a in 0..s.r_arrays {
            prop_assert!(approx_eq(&r.x[a], &seq.x[a], 1e-9), "array {a} of {s:?}");
        }
    }

    #[test]
    fn communication_independent_of_contents(s in shape(), seed2 in any::<u64>()) {
        prop_assume!(s.seed != seed2);
        let strat = StrategyConfig::new(s.procs, s.k, s.dist, s.sweeps);
        let a = PhasedReduction::run_sim(&build_spec(&s), &strat, SimConfig::default());
        let mut s2 = s.clone();
        s2.seed = seed2;
        let b = PhasedReduction::run_sim(&build_spec(&s2), &strat, SimConfig::default());
        // The paper's headline property: identical shape → identical
        // message count and payload volume, whatever the indirection.
        prop_assert_eq!(a.stats.ops.messages, b.stats.ops.messages);
        prop_assert_eq!(a.stats.ops.bytes, b.stats.ops.bytes);
    }

    #[test]
    fn gather_equals_spmv(rows in 8usize..150, nnz_per_row in 1usize..12,
                          procs in 1usize..=5, k in 1usize..=3, sweeps in 1usize..=3,
                          seed in any::<u64>()) {
        let n = rows.max(procs * k * 2);
        let nnz = (n * nnz_per_row).min(n * n / 2).max(n);
        let m = Arc::new(SparseMatrix::random(n, n, nnz, seed));
        let x: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
        let spec = GatherSpec { matrix: Arc::clone(&m), x: Arc::new(x.clone()) };
        let strat = StrategyConfig::new(procs, k, Distribution::Block, sweeps);
        let r = PhasedGather::run_sim(&spec, &strat, SimConfig::default());
        let mut want = vec![0.0; n];
        m.spmv(&x, &mut want);
        prop_assert!(approx_eq(&r.y, &want, 1e-10));
    }
}
