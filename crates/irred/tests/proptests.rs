//! Property tests for the phased executors, on the in-tree
//! [`harness::prop`] harness: for arbitrary problem shapes (element
//! count, iteration count, reference arity `m`, reduction-group width
//! `R`, indirection contents) and arbitrary strategies
//! `(P, k, distribution)`, the phased execution equals the sequential
//! reference.
//!
//! The former `.proptest-regressions` seed is preserved as the named
//! unit test [`regression_gather_rows8_nnz6`].

use std::sync::Arc;

use earth_model::sim::SimConfig;
use harness::prop::{check, Config, Gen};
use harness::{prop_assert, prop_assert_eq};
use irred::{
    approx_eq, seq_reduction, Distribution, EdgeKernel, ExecutionConfig, GatherEngine, GatherSpec,
    PhasedEngine, PhasedSpec, ReductionEngine, StrategyConfig,
};
use workloads::SparseMatrix;

/// A kernel with configurable arity: contribution through ref `r` to
/// array `a` is `(r+1)·(a+1)·w[i]` (sign alternating by ref).
struct ArityKernel {
    m: usize,
    r_arrays: usize,
    weights: Arc<Vec<f64>>,
}

impl EdgeKernel for ArityKernel {
    fn num_refs(&self) -> usize {
        self.m
    }
    fn num_arrays(&self) -> usize {
        self.r_arrays
    }
    fn contrib(&self, _read: &[f64], iter: usize, _elems: &[u32], out: &mut [f64]) {
        let w = self.weights[iter];
        for r in 0..self.m {
            let sign = if r % 2 == 0 { 1.0 } else { -1.0 };
            for a in 0..self.r_arrays {
                out[r * self.r_arrays + a] = sign * (r + 1) as f64 * (a + 1) as f64 * w;
            }
        }
    }
    fn flops_per_iter(&self) -> u64 {
        (self.m * self.r_arrays) as u64 * 2
    }
}

#[derive(Debug, Clone)]
struct Shape {
    n: usize,
    e: usize,
    m: usize,
    r_arrays: usize,
    procs: usize,
    k: usize,
    dist: Distribution,
    sweeps: usize,
    seed: u64,
}

fn shape(g: &mut Gen) -> Shape {
    let n = g.usize_in(8..200);
    let e = g.usize_in(0..400);
    let m = g.usize_incl(1, 3);
    let r_arrays = g.usize_incl(1, 3);
    let procs = g.usize_incl(1, 6);
    let k = g.usize_incl(1, 4);
    let cyclic = g.prob(0.5);
    let sweeps = g.usize_incl(1, 3);
    let seed = g.u64_any();
    Shape {
        n: n.max(procs * 4), // keep portions non-degenerate
        e,
        m,
        r_arrays,
        procs,
        k,
        dist: if cyclic {
            Distribution::Cyclic
        } else {
            Distribution::Block
        },
        sweeps,
        seed,
    }
}

fn build_spec(s: &Shape) -> PhasedSpec<ArityKernel> {
    let mut x = s.seed | 1;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let indirection: Vec<Vec<u32>> = (0..s.m)
        .map(|_| (0..s.e).map(|_| (next() % s.n as u64) as u32).collect())
        .collect();
    PhasedSpec {
        kernel: Arc::new(ArityKernel {
            m: s.m,
            r_arrays: s.r_arrays,
            weights: Arc::new((0..s.e).map(|_| (next() % 1000) as f64 / 13.0).collect()),
        }),
        num_elements: s.n,
        indirection: Arc::new(indirection),
    }
}

#[test]
fn phased_equals_sequential() {
    check("phased_equals_sequential", Config::cases(64), shape, |s| {
        let spec = build_spec(s);
        let strat = StrategyConfig::new(s.procs, s.k, s.dist, s.sweeps);
        let seq = seq_reduction(&spec, s.sweeps, SimConfig::default());
        let r = PhasedEngine::sim(SimConfig::default())
            .run(&spec, &strat)
            .map_err(|e| format!("{e}"))?;
        for a in 0..s.r_arrays {
            prop_assert!(
                approx_eq(&r.values[a], &seq.x[a], 1e-9),
                "array {a} of {s:?}"
            );
        }
        Ok(())
    });
}

#[test]
fn communication_independent_of_contents() {
    check(
        "communication_independent_of_contents",
        Config::cases(64),
        |g| {
            let s = shape(g);
            let mut seed2 = g.u64_any();
            if seed2 == s.seed {
                seed2 ^= 1;
            }
            (s, seed2)
        },
        |(s, seed2)| {
            let strat = StrategyConfig::new(s.procs, s.k, s.dist, s.sweeps);
            let engine = PhasedEngine::sim(SimConfig::default());
            let a = engine
                .run(&build_spec(s), &strat)
                .map_err(|e| format!("{e}"))?;
            let mut s2 = s.clone();
            s2.seed = *seed2;
            let b = engine
                .run(&build_spec(&s2), &strat)
                .map_err(|e| format!("{e}"))?;
            // The paper's headline property: identical shape → identical
            // message count and payload volume, whatever the indirection.
            prop_assert_eq!(a.stats.ops.messages, b.stats.ops.messages);
            prop_assert_eq!(a.stats.ops.bytes, b.stats.ops.bytes);
            Ok(())
        },
    );
}

#[derive(Debug, Clone)]
struct GatherShape {
    rows: usize,
    nnz_per_row: usize,
    procs: usize,
    k: usize,
    sweeps: usize,
    seed: u64,
}

fn gather_matches_spmv(s: &GatherShape) -> Result<(), String> {
    let n = s.rows.max(s.procs * s.k * 2);
    let nnz = (n * s.nnz_per_row).min(n * n / 2).max(n);
    let m = Arc::new(SparseMatrix::random(n, n, nnz, s.seed));
    let x: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
    let spec = GatherSpec {
        matrix: Arc::clone(&m),
        x: Arc::new(x.clone()),
    };
    let strat = StrategyConfig::new(s.procs, s.k, Distribution::Block, s.sweeps);
    let r = GatherEngine::sim(SimConfig::default())
        .run(&spec, &strat)
        .map_err(|e| format!("{e}"))?;
    let mut want = vec![0.0; n];
    m.spmv(&x, &mut want);
    prop_assert!(approx_eq(&r.values[0], &want, 1e-10));
    Ok(())
}

#[test]
fn gather_equals_spmv() {
    check(
        "gather_equals_spmv",
        Config::cases(64),
        |g| GatherShape {
            rows: g.usize_in(8..150),
            nnz_per_row: g.usize_in(1..12),
            procs: g.usize_incl(1, 5),
            k: g.usize_incl(1, 3),
            sweeps: g.usize_incl(1, 3),
            seed: g.u64_any(),
        },
        gather_matches_spmv,
    );
}

/// Tracing determinism (the observability layer's contract): on the
/// simulator, the recorded event stream is a pure function of the
/// problem and strategy — two same-seed traced runs serialize to
/// byte-identical CSV.
#[test]
fn traced_sim_streams_byte_identical_across_runs() {
    check(
        "traced_sim_streams_byte_identical_across_runs",
        Config::cases(32),
        shape,
        |s| {
            let strat = StrategyConfig::new(s.procs, s.k, s.dist, s.sweeps);
            let engine = PhasedEngine::new(ExecutionConfig::default().traced());
            let a = engine
                .run(&build_spec(s), &strat)
                .map_err(|e| format!("{e}"))?;
            let b = engine
                .run(&build_spec(s), &strat)
                .map_err(|e| format!("{e}"))?;
            prop_assert!(!a.trace.is_empty(), "traced run recorded nothing: {s:?}");
            prop_assert_eq!(
                trace::events_to_csv(&a.trace),
                trace::events_to_csv(&b.trace)
            );
            Ok(())
        },
    );
}

/// Tracing never perturbs execution: a `NullSink` run is bit-identical
/// (values, cycle count, op counts) to the same run with the ring sink.
#[test]
fn null_sink_run_bit_identical_to_traced() {
    check(
        "null_sink_run_bit_identical_to_traced",
        Config::cases(32),
        shape,
        |s| {
            let spec = build_spec(s);
            let strat = StrategyConfig::new(s.procs, s.k, s.dist, s.sweeps);
            let plain = PhasedEngine::new(ExecutionConfig::default())
                .run(&spec, &strat)
                .map_err(|e| format!("{e}"))?;
            let traced = PhasedEngine::new(ExecutionConfig::default().traced())
                .run(&spec, &strat)
                .map_err(|e| format!("{e}"))?;
            prop_assert!(plain.trace.is_empty());
            prop_assert_eq!(plain.time_cycles, traced.time_cycles);
            prop_assert_eq!(plain.stats.ops, traced.stats.ops);
            for (a, b) in plain.values.iter().zip(&traced.values) {
                let ab: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
                let bb: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(ab, bb);
            }
            Ok(())
        },
    );
}

/// Former `.proptest-regressions` seed for `gather_equals_spmv`:
/// shrank to `rows = 8, nnz_per_row = 6, procs = 1, k = 1, sweeps = 1,
/// seed = 10545539604246074318`. Kept verbatim so the historical
/// failure mode stays pinned.
#[test]
fn regression_gather_rows8_nnz6() {
    gather_matches_spmv(&GatherShape {
        rows: 8,
        nnz_per_row: 6,
        procs: 1,
        k: 1,
        sweeps: 1,
        seed: 10545539604246074318,
    })
    .unwrap();
}
