//! Engine-equivalence property suite: the [`irred::ReductionEngine`]
//! contract, checked across all four engines.
//!
//! Two families of properties, on the in-tree [`harness::prop`] harness:
//!
//! 1. **Cross-engine agreement** — for random kernels, shapes, and
//!    strategies, the sequential, inspector/executor, phased, and gather
//!    engines produce **bit-identical** reduction arrays. All kernels
//!    here use integer-valued weights, so floating-point contributions
//!    sum exactly in any order and `assert_eq!` on `f64` is meaningful
//!    (the engines legitimately differ in summation order).
//! 2. **Prepared-run determinism** — `prepare` once then `execute` N
//!    times must be bit-identical to N fresh `run` calls, on the mvm
//!    (gather + `set_x`), euler (static multi-array), and moldyn
//!    (read-updating, `post_sweep`) shapes, on the simulator and on the
//!    native backend under a lossless [`FaultConfig`] plan.
//!
//! Failing property cases print a `PROP_SEED` replay line; DESIGN.md §8.

use std::sync::Arc;
use std::time::Duration;

use earth_model::native::NativeConfig;
use earth_model::sim::SimConfig;
use earth_model::FaultConfig;
use harness::prop::{check, Config, Gen};
use harness::{prop_assert, prop_assert_eq};
use irred::baseline::IeEngine;
use irred::kernel::WeightedPairKernel;
use irred::{
    Distribution, EdgeKernel, GatherEngine, GatherSpec, PhasedEngine, PhasedSpec, ReductionEngine,
    SeqEngine, StrategyConfig, Workspace,
};
use workloads::SparseMatrix;

/// A kernel with configurable arity and **integer** weights:
/// contribution through ref `r` to array `a` is
/// `±(r+1)·(a+1)·w[i]` with `w[i] ∈ 0..1000` — every partial sum is an
/// exactly-representable integer, so engine summation order is
/// irrelevant to the bits of the result.
struct IntArityKernel {
    m: usize,
    r_arrays: usize,
    weights: Arc<Vec<f64>>,
}

impl EdgeKernel for IntArityKernel {
    fn num_refs(&self) -> usize {
        self.m
    }
    fn num_arrays(&self) -> usize {
        self.r_arrays
    }
    fn contrib(&self, _read: &[f64], iter: usize, _elems: &[u32], out: &mut [f64]) {
        let w = self.weights[iter];
        for r in 0..self.m {
            let sign = if r % 2 == 0 { 1.0 } else { -1.0 };
            for a in 0..self.r_arrays {
                out[r * self.r_arrays + a] = sign * (r + 1) as f64 * (a + 1) as f64 * w;
            }
        }
    }
    fn flops_per_iter(&self) -> u64 {
        (self.m * self.r_arrays) as u64 * 2
    }
}

#[derive(Debug, Clone)]
struct Shape {
    n: usize,
    e: usize,
    m: usize,
    r_arrays: usize,
    procs: usize,
    k: usize,
    dist: Distribution,
    sweeps: usize,
    seed: u64,
}

fn shape(g: &mut Gen) -> Shape {
    let procs = g.usize_incl(1, 6);
    Shape {
        n: g.usize_in(8..150).max(procs * 4),
        e: g.usize_in(0..300),
        m: g.usize_incl(1, 3),
        r_arrays: g.usize_incl(1, 3),
        procs,
        k: g.usize_incl(1, 4),
        dist: *g.pick(&[Distribution::Block, Distribution::Cyclic]),
        sweeps: g.usize_incl(1, 3),
        seed: g.u64_any(),
    }
}

fn build_spec(s: &Shape) -> PhasedSpec<IntArityKernel> {
    let mut x = s.seed | 1;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let indirection: Vec<Vec<u32>> = (0..s.m)
        .map(|_| (0..s.e).map(|_| (next() % s.n as u64) as u32).collect())
        .collect();
    PhasedSpec {
        kernel: Arc::new(IntArityKernel {
            m: s.m,
            r_arrays: s.r_arrays,
            weights: Arc::new((0..s.e).map(|_| (next() % 1000) as f64).collect()),
        }),
        num_elements: s.n,
        indirection: Arc::new(indirection),
    }
}

// --- family 1: cross-engine agreement -----------------------------------

/// Sequential, inspector/executor, and phased engines agree bit-for-bit
/// on random static kernels and strategies.
#[test]
fn seq_ie_phased_agree_bitwise() {
    check(
        "seq_ie_phased_agree_bitwise",
        Config::cases_quick(64),
        shape,
        |s| {
            let spec = build_spec(s);
            let strat = StrategyConfig::new(s.procs, s.k, s.dist, s.sweeps);
            let cfg = SimConfig::default();
            let seq = SeqEngine::new(cfg)
                .run(&spec, &strat)
                .map_err(|e| format!("seq: {e}"))?;
            let phased = PhasedEngine::sim(cfg)
                .run(&spec, &strat)
                .map_err(|e| format!("phased: {e}"))?;
            let ie = IeEngine::sim(cfg)
                .run(&spec, &strat)
                .map_err(|e| format!("ie: {e}"))?;
            prop_assert_eq!(&seq.values, &phased.values, "seq vs phased on {s:?}");
            prop_assert_eq!(&seq.values, &ie.values, "seq vs ie on {s:?}");
            prop_assert_eq!(seq.provenance.engine, "seq");
            prop_assert_eq!(phased.provenance.engine, "phased");
            prop_assert_eq!(ie.provenance.engine, "inspector-executor");
            Ok(())
        },
    );
}

/// The gather engine agrees bit-for-bit with the other three running the
/// same sparse product expressed as a phased reduction
/// (`y[row] += A[nz]·x[col]`, LHS indirection = the row of each
/// nonzero).
#[test]
fn gather_agrees_bitwise_with_phased_formulation() {
    struct SpmvKernel {
        matrix: Arc<SparseMatrix>,
        x: Arc<Vec<f64>>,
    }
    impl EdgeKernel for SpmvKernel {
        fn num_refs(&self) -> usize {
            1
        }
        fn num_arrays(&self) -> usize {
            1
        }
        fn contrib(&self, _read: &[f64], iter: usize, _elems: &[u32], out: &mut [f64]) {
            out[0] = self.matrix.values[iter] * self.x[self.matrix.col_idx[iter] as usize];
        }
        fn flops_per_iter(&self) -> u64 {
            2
        }
    }

    check(
        "gather_agrees_bitwise",
        Config::cases_quick(48),
        |g| {
            let procs = g.usize_incl(1, 5);
            let n = g.usize_in(8..100).max(procs * 4);
            let nnz = g.usize_in(1..8) * n;
            (n, nnz, procs, g.usize_incl(1, 3), g.u64_any())
        },
        |&(n, nnz, procs, k, seed)| {
            // Integer-valued matrix entries and vector: products up to
            // 1e6 and their sums stay exactly representable.
            let mut m = SparseMatrix::random(n, n, nnz, seed);
            let mut s = seed | 1;
            for v in &mut m.values {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                *v = (s % 1000) as f64;
            }
            let m = Arc::new(m);
            let x: Vec<f64> = (0..n).map(|i| ((i * 7) % 100) as f64).collect();

            let strat = StrategyConfig::new(procs, k, Distribution::Block, 1);
            let cfg = SimConfig::default();
            let gather = GatherEngine::sim(cfg)
                .run(
                    &GatherSpec {
                        matrix: Arc::clone(&m),
                        x: Arc::new(x.clone()),
                    },
                    &strat,
                )
                .map_err(|e| format!("gather: {e}"))?;

            // The same product as a phased reduction over nonzeros.
            let rows: Vec<u32> = (0..m.nrows as u32)
                .flat_map(|r| {
                    let lo = m.row_ptr[r as usize] as usize;
                    let hi = m.row_ptr[r as usize + 1] as usize;
                    std::iter::repeat_n(r, hi - lo)
                })
                .collect();
            let spec = PhasedSpec {
                kernel: Arc::new(SpmvKernel {
                    matrix: Arc::clone(&m),
                    x: Arc::new(x),
                }),
                num_elements: m.nrows,
                indirection: Arc::new(vec![rows]),
            };
            let seq = SeqEngine::new(cfg)
                .run(&spec, &strat)
                .map_err(|e| format!("seq: {e}"))?;
            let phased = PhasedEngine::sim(cfg)
                .run(&spec, &strat)
                .map_err(|e| format!("phased: {e}"))?;
            let ie = IeEngine::sim(cfg)
                .run(&spec, &strat)
                .map_err(|e| format!("ie: {e}"))?;
            prop_assert_eq!(&gather.values[0], &seq.values[0], "gather vs seq");
            prop_assert_eq!(&gather.values[0], &phased.values[0], "gather vs phased");
            prop_assert_eq!(&gather.values[0], &ie.values[0], "gather vs ie");
            Ok(())
        },
    );
}

// --- family 2: prepared-run determinism ----------------------------------

const EXECUTES: usize = 3;

/// Provenance must label the first execute a build and the rest reuses.
fn assert_provenance(outcomes: &[irred::RunOutcome]) {
    for (i, out) in outcomes.iter().enumerate() {
        assert_eq!(out.provenance.reused_plan, i > 0, "execute {i}");
        assert_eq!(out.provenance.executions, i as u64 + 1);
    }
}

/// Prepare-once/execute-N equals N fresh runs on random static kernels
/// (the euler shape: multi-ref, multi-array, static edge data).
#[test]
fn prepared_phased_sim_matches_fresh_runs() {
    check(
        "prepared_phased_sim_matches_fresh_runs",
        Config::cases_quick(32),
        shape,
        |s| {
            let spec = build_spec(s);
            let strat = StrategyConfig::new(s.procs, s.k, s.dist, s.sweeps);
            let engine = PhasedEngine::sim(SimConfig::default());
            let mut prepared = engine
                .prepare(&spec, &strat)
                .map_err(|e| format!("prepare: {e}"))?;
            let mut ws = Workspace::new();
            for i in 0..EXECUTES {
                let warm = engine
                    .execute(&mut prepared, &mut ws)
                    .map_err(|e| format!("execute {i}: {e}"))?;
                let fresh = engine
                    .run(&spec, &strat)
                    .map_err(|e| format!("fresh run {i}: {e}"))?;
                prop_assert_eq!(&warm.values, &fresh.values, "values, execute {i} of {s:?}");
                prop_assert_eq!(&warm.read, &fresh.read, "read state, execute {i}");
                prop_assert_eq!(warm.provenance.reused_plan, i > 0);
                prop_assert!(!fresh.provenance.reused_plan, "fresh runs never reuse");
            }
            Ok(())
        },
    );
}

/// The mvm shape: one gather plan serves many products. Each
/// `set_x` + `execute` must be bit-identical to a cold `run` on a spec
/// holding that vector.
#[test]
fn prepared_gather_set_x_matches_fresh_runs() {
    let n = 60usize;
    let matrix = Arc::new(SparseMatrix::random(n, n, 300, 17));
    let strat = StrategyConfig::new(4, 2, Distribution::Block, 1);
    let engine = GatherEngine::sim(SimConfig::default());

    let mut prepared = engine
        .prepare(
            &GatherSpec {
                matrix: Arc::clone(&matrix),
                x: Arc::new(vec![0.0; n]),
            },
            &strat,
        )
        .expect("valid gather spec");
    let mut ws = Workspace::new();

    let mut outcomes = Vec::new();
    for product in 0..EXECUTES {
        let x: Vec<f64> = (0..n).map(|i| ((i + product * 31) % 97) as f64).collect();
        prepared.set_x(&x).expect("x spans the columns");
        let warm = engine.execute(&mut prepared, &mut ws).expect("execute");
        let fresh = engine
            .run(
                &GatherSpec {
                    matrix: Arc::clone(&matrix),
                    x: Arc::new(x),
                },
                &strat,
            )
            .expect("fresh run");
        assert_eq!(warm.values, fresh.values, "product {product}");
        outcomes.push(warm);
    }
    assert_provenance(&outcomes);
}

/// The moldyn shape: a read-updating kernel whose `post_sweep` feeds
/// each sweep's outputs into the next sweep's inputs. Every execute must
/// restart from the kernel's initial read state, so repeated executes of
/// one prepared run are bit-identical to fresh runs.
#[test]
fn prepared_read_updating_kernel_matches_fresh_runs() {
    /// `x[e1] += p[e2] - p[e1]`, `x[e2] -= p[e2] - p[e1]`; after each
    /// sweep `p[v] += x[v]`. All values stay integers.
    struct DriftKernel {
        init: Arc<Vec<f64>>,
    }
    impl EdgeKernel for DriftKernel {
        fn num_refs(&self) -> usize {
            2
        }
        fn num_arrays(&self) -> usize {
            1
        }
        fn num_read_arrays(&self) -> usize {
            1
        }
        fn init_read(&self) -> Vec<f64> {
            self.init.as_ref().clone()
        }
        fn updates_read_state(&self) -> bool {
            true
        }
        fn contrib(&self, read: &[f64], _iter: usize, elems: &[u32], out: &mut [f64]) {
            let d = read[elems[1] as usize] - read[elems[0] as usize];
            out[0] = d;
            out[1] = -d;
        }
        fn flops_per_iter(&self) -> u64 {
            3
        }
        fn post_sweep(&self, read: &mut [f64], range: std::ops::Range<usize>, x: &[f64]) -> bool {
            for (i, v) in range.enumerate() {
                read[v] += x[i];
            }
            true
        }
        fn post_flops_per_elem(&self) -> u64 {
            1
        }
    }

    let n = 40usize;
    let mut s = 0xD1F7u64;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let spec = PhasedSpec {
        kernel: Arc::new(DriftKernel {
            init: Arc::new((0..n).map(|_| (next() % 50) as f64).collect()),
        }),
        num_elements: n,
        indirection: Arc::new(vec![
            (0..200).map(|_| (next() % n as u64) as u32).collect(),
            (0..200).map(|_| (next() % n as u64) as u32).collect(),
        ]),
    };

    for strat in [
        StrategyConfig::new(1, 1, Distribution::Block, 3),
        StrategyConfig::new(3, 2, Distribution::Cyclic, 3),
        StrategyConfig::new(5, 2, Distribution::Block, 2),
    ] {
        let engine = PhasedEngine::sim(SimConfig::default());
        let mut prepared = engine.prepare(&spec, &strat).expect("valid spec");
        let mut ws = Workspace::new();
        let mut outcomes = Vec::new();
        for i in 0..EXECUTES {
            let warm = engine.execute(&mut prepared, &mut ws).expect("execute");
            let fresh = engine.run(&spec, &strat).expect("fresh run");
            assert_eq!(warm.values, fresh.values, "P={} execute {i}", strat.procs);
            assert_eq!(warm.read, fresh.read, "P={} read state {i}", strat.procs);
            outcomes.push(warm);
        }
        assert_provenance(&outcomes);
    }
}

/// Prepared reuse on the **native** backend, under a lossless fault plan
/// (delays, reorders, duplicates — no drops): every execute and every
/// fresh run must still produce the exact integer answer the simulator
/// produces.
#[test]
fn prepared_native_lossless_matches_fresh_and_sim() {
    let mut s = 0xBEEFu64;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let n = 24usize;
    let iters = 150usize;
    let spec = PhasedSpec {
        kernel: Arc::new(WeightedPairKernel {
            weights: Arc::new((0..iters).map(|_| (next() % 1000) as f64).collect()),
        }),
        num_elements: n,
        indirection: Arc::new(vec![
            (0..iters).map(|_| (next() % n as u64) as u32).collect(),
            (0..iters).map(|_| (next() % n as u64) as u32).collect(),
        ]),
    };
    let strat = StrategyConfig::new(3, 2, Distribution::Cyclic, 2);

    let reference = PhasedEngine::sim(SimConfig::default())
        .run(&spec, &strat)
        .expect("sim reference");

    let native = PhasedEngine::native(NativeConfig {
        watchdog: Duration::from_secs(5),
        faults: Some(FaultConfig::lossless(0x5EED)),
        starved_is_error: true,
        host_threads: None,
        deadline: None,
    });
    let mut prepared = native.prepare(&spec, &strat).expect("valid spec");
    let mut ws = Workspace::new();
    let mut outcomes = Vec::new();
    for i in 0..EXECUTES {
        let warm = native.execute(&mut prepared, &mut ws).expect("execute");
        let fresh = native.run(&spec, &strat).expect("fresh native run");
        assert_eq!(warm.values, reference.values, "warm vs sim, execute {i}");
        assert_eq!(fresh.values, reference.values, "fresh vs sim, run {i}");
        assert_eq!(warm.provenance.backend, "native");
        outcomes.push(warm);
    }
    assert_provenance(&outcomes);
}
