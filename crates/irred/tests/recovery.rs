//! Recovery-ladder and validation tests for the phased executor.
//!
//! The contract (ISSUE: robustness): callers of the phased executor
//! always get a bit-correct answer or a typed error — never a hang,
//! never silent corruption. [`RecoveryPolicy`] adds the ladder: retry
//! the parallel run (fresh program, reseeded fault plan, exponential
//! backoff), then fall back to the sequential executor with a warning.
//!
//! Failing property cases print a `PROP_SEED` replay line; DESIGN.md §8.

use std::sync::Arc;
use std::time::Duration;

use earth_model::native::{NativeConfig, RunError};
use earth_model::sim::SimConfig;
use earth_model::FaultConfig;
use harness::prop::{check, Config, Gen};
use harness::{prop_assert, prop_assert_eq};
use irred::kernel::WeightedPairKernel;
use irred::phased::PhasedError;
use irred::{
    approx_eq, seq_reduction, Distribution, EdgeKernel, PhasedEngine, PhasedSpec, RecoveryPolicy,
    ReductionEngine, StrategyConfig, Workspace,
};
use lightinspector::InspectError;

fn spec_from(g: &mut Gen) -> PhasedSpec<WeightedPairKernel> {
    let n = g.usize_incl(4, 48);
    let iters = g.usize_incl(1, 200);
    let ia1 = (0..iters).map(|_| g.u32_in(0..n as u32)).collect();
    let ia2 = (0..iters).map(|_| g.u32_in(0..n as u32)).collect();
    // Integer-valued weights: contributions sum exactly in any order, so
    // bit-identical comparisons below are meaningful.
    let weights: Vec<f64> = (0..iters).map(|_| g.u32_in(0..1000) as f64).collect();
    PhasedSpec {
        kernel: Arc::new(WeightedPairKernel {
            weights: Arc::new(weights),
        }),
        num_elements: n,
        indirection: Arc::new(vec![ia1, ia2]),
    }
}

fn strat_from(g: &mut Gen) -> StrategyConfig {
    let procs = g.usize_incl(1, 4);
    let k = g.usize_incl(1, 3);
    let dist = *g.pick(&[Distribution::Block, Distribution::Cyclic]);
    let sweeps = g.usize_incl(1, 3);
    StrategyConfig::new(procs, k, dist, sweeps)
}

fn fixed_spec(seed: u64) -> PhasedSpec<WeightedPairKernel> {
    let mut s = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let n = 24usize;
    let iters = 150usize;
    let ia1 = (0..iters).map(|_| (next() % n as u64) as u32).collect();
    let ia2 = (0..iters).map(|_| (next() % n as u64) as u32).collect();
    let weights: Vec<f64> = (0..iters).map(|_| (next() % 1000) as f64).collect();
    PhasedSpec {
        kernel: Arc::new(WeightedPairKernel {
            weights: Arc::new(weights),
        }),
        num_elements: n,
        indirection: Arc::new(vec![ia1, ia2]),
    }
}

fn fixed_strat() -> StrategyConfig {
    StrategyConfig::new(2, 2, Distribution::Cyclic, 2)
}

/// Fault plan that drops every message: the phased program starves
/// deterministically (it is all message-driven past the first fibers).
fn drop_everything(seed: u64) -> FaultConfig {
    FaultConfig {
        drop_prob: 1.0,
        ..FaultConfig::none(seed)
    }
}

fn strict(faults: Option<FaultConfig>) -> NativeConfig {
    NativeConfig {
        watchdog: Duration::from_secs(5),
        faults,
        starved_is_error: true,
        host_threads: None,
        deadline: None,
    }
}

/// Prepare once on the native backend, then run the per-attempt
/// recovery ladder — the engine-API successor of the old
/// `run_recovering_with` entry point.
fn run_recovering_with<K: EdgeKernel>(
    spec: &PhasedSpec<K>,
    strat: &StrategyConfig,
    policy: RecoveryPolicy,
    cfg_for_attempt: impl Fn(u32) -> NativeConfig,
) -> Result<irred::RunOutcome, irred::EngineError> {
    let engine = PhasedEngine::native(NativeConfig::default());
    let mut prepared = engine.prepare(spec, strat)?;
    let mut ws = Workspace::new();
    prepared.execute_recovering_with(&mut ws, policy, cfg_for_attempt)
}

// --- fault transparency on the real executor ----------------------------

#[test]
fn lossless_faults_native_matches_fault_free() {
    check(
        "lossless_faults_native_matches_fault_free",
        Config::cases(64),
        |g| (spec_from(g), strat_from(g), g.u64_any()),
        |(spec, strat, seed)| {
            let clean = PhasedEngine::native(NativeConfig::default())
                .run(spec, strat)
                .unwrap();
            let faulty = PhasedEngine::native(strict(Some(FaultConfig::lossless(*seed))))
                .run(spec, strat)
                .unwrap();
            // The phased program is a pure dataflow graph and the
            // weights are integers: delayed / reordered / duplicated
            // messages must leave the answer bit-identical.
            prop_assert_eq!(&faulty.values, &clean.values);
            let seq = seq_reduction(spec, strat.sweeps, SimConfig::default());
            prop_assert!(approx_eq(&faulty.values[0], &seq.x[0], 1e-9));
            Ok(())
        },
    );
}

#[test]
fn chaos_recovery_always_returns_correct_answer() {
    check(
        "chaos_recovery_always_returns_correct_answer",
        Config::cases(64),
        |g| {
            let spec = spec_from(g);
            let strat = strat_from(g);
            let faults = FaultConfig {
                drop_prob: g.f64_in(0.0..0.4),
                panic_prob: g.f64_in(0.0..0.1),
                ..FaultConfig::lossless(g.u64_any())
            };
            (spec, strat, faults)
        },
        |(spec, strat, faults)| {
            let seq = seq_reduction(spec, strat.sweeps, SimConfig::default());
            let res = PhasedEngine::recovering(strict(Some(*faults)), RecoveryPolicy::default())
                .run(spec, strat)
                .unwrap();
            // With fallback enabled the ladder cannot fail — and whatever
            // rung answered, the values must be right.
            prop_assert!(approx_eq(&res.values[0], &seq.x[0], 1e-9));
            prop_assert!(res.recovery.attempts >= 1);
            if res.recovery.fell_back_to_seq {
                prop_assert!(res.recovery.warning.is_some());
                prop_assert_eq!(res.recovery.errors.len(), res.recovery.attempts as usize);
            }
            Ok(())
        },
    );
}

// --- the ladder, rung by rung -------------------------------------------

#[test]
fn recovery_retries_then_succeeds() {
    let spec = fixed_spec(11);
    let strat = fixed_strat();
    let seq = seq_reduction(&spec, strat.sweeps, SimConfig::default());
    // Attempt 0 is doomed (every message dropped); attempt 1 runs clean.
    let res = run_recovering_with(&spec, &strat, RecoveryPolicy::default(), |attempt| {
        if attempt == 0 {
            strict(Some(drop_everything(3)))
        } else {
            strict(None)
        }
    })
    .unwrap();
    assert_eq!(res.recovery.attempts, 2);
    assert_eq!(res.recovery.errors.len(), 1);
    assert!(
        res.recovery.errors[0].contains("stalled"),
        "{:?}",
        res.recovery.errors
    );
    assert!(!res.recovery.fell_back_to_seq);
    assert!(res
        .recovery
        .warning
        .as_deref()
        .unwrap()
        .contains("attempt 2"));
    assert!(approx_eq(&res.values[0], &seq.x[0], 1e-9));
}

#[test]
fn recovery_exhausts_retries_and_falls_back_to_seq() {
    let spec = fixed_spec(12);
    let strat = fixed_strat();
    let seq = seq_reduction(&spec, strat.sweeps, SimConfig::default());
    let policy = RecoveryPolicy {
        max_attempts: 3,
        ..RecoveryPolicy::default()
    };
    let res = run_recovering_with(&spec, &strat, policy, |a| {
        strict(Some(drop_everything(a as u64 + 1)))
    })
    .unwrap();
    assert_eq!(res.recovery.attempts, 3);
    assert_eq!(res.recovery.errors.len(), 3);
    assert!(res.recovery.fell_back_to_seq);
    let warning = res.recovery.warning.as_deref().unwrap();
    assert!(warning.contains("sequential"), "{warning}");
    // The fallback answer is the sequential executor's own — exact.
    assert_eq!(res.values[0], seq.x[0]);
    assert_eq!(res.read, seq.read);
}

#[test]
fn recovery_without_fallback_returns_last_error() {
    let spec = fixed_spec(13);
    let strat = fixed_strat();
    let policy = RecoveryPolicy {
        max_attempts: 2,
        fall_back_to_seq: false,
        ..RecoveryPolicy::default()
    };
    match run_recovering_with(&spec, &strat, policy, |a| {
        strict(Some(drop_everything(a as u64 + 40)))
    }) {
        Err(PhasedError::Run(RunError::Stalled { .. })) => {}
        other => panic!("expected Run(Stalled), got {other:?}"),
    }
}

#[test]
fn reseeded_fault_plans_differ_between_attempts() {
    // run_recovering itself must not replay the identical fault schedule
    // on retry: the reseed changes the per-site decisions.
    let base = FaultConfig::lossless(77);
    assert_ne!(base.seed, base.reseeded(1).seed);
    assert_ne!(base.reseeded(1).seed, base.reseeded(2).seed);
}

// --- caller bugs: typed, immediate, never retried -----------------------

#[test]
fn out_of_range_indirection_is_invalid_not_retried() {
    let mut spec = fixed_spec(14);
    {
        let ind = Arc::get_mut(&mut spec.indirection).unwrap();
        ind[1][7] = spec.num_elements as u32 + 3; // outside the array
    }
    match PhasedEngine::native(NativeConfig::default()).run(&spec, &fixed_strat()) {
        Err(PhasedError::Invalid(InspectError::OutOfRange { elem, .. })) => {
            assert_eq!(elem, spec.num_elements as u32 + 3);
        }
        other => panic!("expected Invalid(OutOfRange), got {other:?}"),
    }
    // And the recovery ladder refuses to retry it.
    match PhasedEngine::recovering(NativeConfig::default(), RecoveryPolicy::default())
        .run(&spec, &fixed_strat())
    {
        Err(PhasedError::Invalid(_)) => {}
        other => panic!("expected immediate Invalid, got {other:?}"),
    }
}

#[test]
fn ragged_indirection_is_a_shape_error() {
    let mut spec = fixed_spec(15);
    {
        let ind = Arc::get_mut(&mut spec.indirection).unwrap();
        ind[1].pop(); // now shorter than array 0
    }
    match PhasedEngine::native(NativeConfig::default()).run(&spec, &fixed_strat()) {
        Err(PhasedError::Shape { expected, got, .. }) => {
            assert_eq!(expected, spec.indirection[0].len());
            assert_eq!(got, spec.indirection[0].len() - 1);
        }
        other => panic!("expected Shape, got {other:?}"),
    }
}

#[test]
fn wrong_indirection_count_is_a_shape_error() {
    let mut spec = fixed_spec(16);
    {
        let len = spec.indirection[0].len();
        let ind = Arc::get_mut(&mut spec.indirection).unwrap();
        ind.push(vec![0; len]);
    }
    match PhasedEngine::native(NativeConfig::default()).run(&spec, &fixed_strat()) {
        Err(PhasedError::Shape {
            expected: 2,
            got: 3,
            ..
        }) => {}
        other => panic!("expected Shape{{2,3}}, got {other:?}"),
    }
}

#[test]
fn phased_error_display_names_the_cause() {
    let e = PhasedError::Invalid(InspectError::NoReferences);
    assert!(e.to_string().contains("invalid phased spec"));
    let e = PhasedError::Shape {
        what: "indirection array length",
        expected: 10,
        got: 9,
    };
    let s = e.to_string();
    assert!(s.contains("expected 10"), "{s}");
    assert!(s.contains("got 9"), "{s}");
}

// --- gather executor: same validation contract --------------------------

mod gather {
    use super::*;
    use irred::{GatherEngine, GatherSpec};
    use workloads::SparseMatrix;

    #[test]
    fn wrong_x_length_is_a_shape_error() {
        let matrix = Arc::new(SparseMatrix::random(32, 32, 200, 5));
        let spec = GatherSpec {
            x: Arc::new(vec![1.0; matrix.ncols + 4]),
            matrix,
        };
        match GatherEngine::native(NativeConfig::default()).run(&spec, &fixed_strat()) {
            Err(PhasedError::Shape {
                expected: 32,
                got: 36,
                ..
            }) => {}
            other => panic!("expected Shape{{32,36}}, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_column_is_invalid() {
        let mut m = SparseMatrix::random(32, 32, 200, 6);
        m.col_idx[3] = 99; // ncols is 32
        let spec = GatherSpec {
            x: Arc::new(vec![1.0; 32]),
            matrix: Arc::new(m),
        };
        match GatherEngine::native(NativeConfig::default()).run(&spec, &fixed_strat()) {
            Err(PhasedError::Invalid(InspectError::OutOfRange { elem: 99, .. })) => {}
            other => panic!("expected Invalid(OutOfRange), got {other:?}"),
        }
    }

    #[test]
    fn gather_lossless_faults_are_bit_transparent() {
        let matrix = Arc::new(SparseMatrix::random(48, 48, 600, 7));
        let spec = GatherSpec {
            x: Arc::new((0..48).map(|i| (i % 7) as f64).collect()),
            matrix,
        };
        let strat = fixed_strat();
        let clean = GatherEngine::native(NativeConfig::default())
            .run(&spec, &strat)
            .unwrap();
        let faulty = GatherEngine::native(strict(Some(FaultConfig::lossless(8))))
            .run(&spec, &strat)
            .unwrap();
        assert_eq!(faulty.values, clean.values);
    }

    #[test]
    fn gather_dropped_messages_become_typed_stalls() {
        let matrix = Arc::new(SparseMatrix::random(48, 48, 600, 9));
        let spec = GatherSpec {
            x: Arc::new(vec![1.0; 48]),
            matrix,
        };
        match GatherEngine::native(strict(Some(drop_everything(2)))).run(&spec, &fixed_strat()) {
            Err(PhasedError::Run(RunError::Stalled { .. })) => {}
            other => panic!("expected Run(Stalled), got {other:?}"),
        }
    }
}
