//! [`ExecutionConfig`] — the single knob bundle every engine consumes.
//!
//! Before this module existed each engine constructor took either a
//! [`SimConfig`] or a [`NativeConfig`] and recovery/fault/trace settings
//! were threaded through separate side channels. `ExecutionConfig`
//! unifies backend choice, backend knobs, deterministic fault injection,
//! the recovery ladder, and trace-sink selection behind one `Copy`
//! builder, so a bench harness can construct *one* config and hand it to
//! any [`ReductionEngine`](crate::ReductionEngine).

use std::sync::Arc;
use std::time::Duration;

use earth_model::native::NativeConfig;
use earth_model::sim::SimConfig;
use earth_model::{FaultConfig, NullSink, RingSink, TraceSink};

use crate::engine::RecoveryPolicy;
use crate::tuning::Tuning;

/// Which EARTH backend an [`ExecutionConfig`] drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// The cycle-metered discrete-event simulator.
    Sim,
    /// Real OS threads (watchdog, wall-clock timing).
    Native,
}

impl BackendKind {
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Sim => "sim",
            BackendKind::Native => "native",
        }
    }
}

/// Whether (and how) a run records structured trace events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TraceConfig {
    /// No recording; every hook short-circuits on one cached boolean.
    #[default]
    Off,
    /// Per-node bounded ring buffers; the newest `capacity` events per
    /// node survive. Drained into [`RunOutcome::trace`](crate::RunOutcome::trace).
    Ring {
        /// Events retained per node ring.
        capacity: usize,
    },
}

impl TraceConfig {
    /// Default per-node ring capacity — generous enough that the
    /// benchmark-sized runs in this repo never wrap at small processor
    /// counts. At ≥ [`Self::BUDGET_NODE_THRESHOLD`] nodes the aggregate
    /// budget below overrides this (see [`Self::budgeted_capacity`]).
    pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

    /// Node count at which the aggregate trace budget kicks in. Below
    /// this, the requested per-node capacity is honored verbatim.
    pub const BUDGET_NODE_THRESHOLD: usize = 256;

    /// Aggregate retained-event budget across all rings at scale. Each
    /// retained [`trace::TraceEvent`] is a few dozen bytes, so 2 Mi
    /// events bounds trace memory near ~64 MiB no matter how many
    /// simulated nodes a run has — without this, per-node rings are
    /// O(nodes × capacity) and a traced 1024-proc run at the default
    /// capacity would retain 64 Mi events. Overflow is *visible*: the
    /// sink counts overwritten events and engines surface the count as
    /// the `trace_dropped_events` metric.
    pub const AGGREGATE_EVENT_BUDGET: usize = 1 << 21;

    /// Per-node floor under the aggregate budget, so even huge runs
    /// keep a useful recent-history window per node.
    pub const MIN_RING_CAPACITY: usize = 256;

    /// Ring recording at [`Self::DEFAULT_RING_CAPACITY`].
    pub fn ring() -> Self {
        TraceConfig::Ring {
            capacity: Self::DEFAULT_RING_CAPACITY,
        }
    }

    pub fn enabled(self) -> bool {
        !matches!(self, TraceConfig::Off)
    }

    /// The per-node ring capacity actually used for a run with `nodes`
    /// processors: the requested capacity, clamped at ≥
    /// [`Self::BUDGET_NODE_THRESHOLD`] nodes so total retained events
    /// stay within [`Self::AGGREGATE_EVENT_BUDGET`] (with a
    /// [`Self::MIN_RING_CAPACITY`] floor). Depends only on the node
    /// count — never on `host_threads` — so the budget cannot break the
    /// sim core's byte-determinism across thread counts.
    pub fn budgeted_capacity(capacity: usize, nodes: usize) -> usize {
        if nodes < Self::BUDGET_NODE_THRESHOLD {
            return capacity;
        }
        // +1: the sink keeps one extra ring for run-level events.
        let per_node = Self::AGGREGATE_EVENT_BUDGET / (nodes + 1);
        capacity.min(per_node.max(Self::MIN_RING_CAPACITY))
    }

    /// Build the sink this config calls for. `nodes` is the processor
    /// count; the ring sink keeps one extra ring for run-level events
    /// ([`trace::RUN_NODE`]).
    pub(crate) fn make_sink(self, nodes: usize) -> Arc<dyn TraceSink> {
        match self {
            TraceConfig::Off => Arc::new(NullSink),
            TraceConfig::Ring { capacity } => Arc::new(RingSink::new(
                nodes,
                Self::budgeted_capacity(capacity, nodes),
            )),
        }
    }
}

/// Everything an engine needs to know about *how* to run: backend,
/// backend knobs, fault injection, recovery, tracing. `Copy`, so configs
/// are shared by value exactly like the old per-backend structs.
#[derive(Debug, Clone, Copy)]
pub struct ExecutionConfig {
    pub backend: BackendKind,
    /// Simulator knobs (used when `backend == Sim`; also by the
    /// sequential fallback's cycle model).
    pub sim: SimConfig,
    /// Native-backend knobs (used when `backend == Native`).
    pub native: NativeConfig,
    /// Walk the recovery ladder on native failures when set.
    pub recovery: Option<RecoveryPolicy>,
    /// Trace-sink selection (see [`TraceConfig`]).
    pub trace: TraceConfig,
    /// Performance knobs that do not change what is computed: loop
    /// layout, SIMD mode, tiling, host thread cap (see [`Tuning`]).
    pub tuning: Tuning,
}

impl Default for ExecutionConfig {
    /// Simulator backend, default knobs, no recovery, no tracing.
    fn default() -> Self {
        ExecutionConfig::sim(SimConfig::default())
    }
}

impl ExecutionConfig {
    /// Run on the discrete-event simulator with these knobs.
    pub fn sim(cfg: SimConfig) -> Self {
        ExecutionConfig {
            backend: BackendKind::Sim,
            sim: cfg,
            native: NativeConfig::default(),
            recovery: None,
            trace: TraceConfig::Off,
            tuning: Tuning::default(),
        }
    }

    /// Run on real OS threads with these knobs.
    pub fn native(cfg: NativeConfig) -> Self {
        ExecutionConfig {
            backend: BackendKind::Native,
            sim: SimConfig::default(),
            native: cfg,
            recovery: None,
            trace: TraceConfig::Off,
            tuning: Tuning::default(),
        }
    }

    /// Apply a [`Tuning`] bundle. This is the one place every
    /// performance knob enters an engine: the bundle is stored whole,
    /// and its `host_threads` cap is mirrored into both backend configs —
    /// the native thread pool reads `native.host_threads`, and the
    /// simulator's parallel event core reads `sim.host_threads`. Neither
    /// changes *what* is computed (the sim core is byte-deterministic
    /// across thread counts), only how fast.
    pub fn with_tuning(mut self, tuning: Tuning) -> Self {
        self.tuning = tuning;
        if let Some(t) = tuning.host_threads {
            self.native.host_threads = Some(t);
            self.sim.host_threads = t;
        }
        self
    }

    /// Inject this deterministic fault plan on whichever backend runs.
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.sim.faults = Some(faults);
        self.native.faults = Some(faults);
        self
    }

    /// Walk the recovery ladder (retry + optional sequential fallback)
    /// on native failures.
    pub fn with_recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = Some(policy);
        self
    }

    /// Record structured trace events into the configured sink.
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// Shorthand for `.with_trace(TraceConfig::ring())`.
    pub fn traced(self) -> Self {
        self.with_trace(TraceConfig::ring())
    }

    /// Native watchdog interval (no effect on the simulator, which
    /// cannot stall).
    pub fn with_watchdog(mut self, watchdog: Duration) -> Self {
        self.native.watchdog = watchdog;
        self
    }

    pub fn backend_label(&self) -> &'static str {
        self.backend.label()
    }
}

impl From<SimConfig> for ExecutionConfig {
    fn from(cfg: SimConfig) -> Self {
        ExecutionConfig::sim(cfg)
    }
}

impl From<NativeConfig> for ExecutionConfig {
    fn from(cfg: NativeConfig) -> Self {
        ExecutionConfig::native(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_untraced_sim() {
        let cfg = ExecutionConfig::default();
        assert_eq!(cfg.backend, BackendKind::Sim);
        assert!(cfg.recovery.is_none());
        assert!(!cfg.trace.enabled());
    }

    #[test]
    fn with_faults_sets_both_backends() {
        let f = FaultConfig::none(42);
        let cfg = ExecutionConfig::sim(SimConfig::default()).with_faults(f);
        assert_eq!(cfg.sim.faults, Some(f));
        assert_eq!(cfg.native.faults, Some(f));
    }

    #[test]
    fn builders_compose() {
        let cfg = ExecutionConfig::native(NativeConfig::default())
            .with_recovery(RecoveryPolicy::default())
            .with_watchdog(Duration::from_secs(1))
            .traced();
        assert_eq!(cfg.backend, BackendKind::Native);
        assert!(cfg.recovery.is_some());
        assert_eq!(cfg.native.watchdog, Duration::from_secs(1));
        assert!(cfg.trace.enabled());
    }

    #[test]
    fn from_impls_pick_the_backend() {
        let s: ExecutionConfig = SimConfig::default().into();
        assert_eq!(s.backend, BackendKind::Sim);
        let n: ExecutionConfig = NativeConfig::default().into();
        assert_eq!(n.backend, BackendKind::Native);
    }

    #[test]
    fn with_tuning_mirrors_host_threads_into_native() {
        use crate::tuning::{SimdMode, TileChoice};
        let cfg = ExecutionConfig::native(NativeConfig::default())
            .with_tuning(Tuning::auto().host_threads(3));
        assert_eq!(cfg.native.host_threads, Some(3));
        assert_eq!(cfg.sim.host_threads, 3);
        assert_eq!(cfg.tuning.tile, TileChoice::Auto);
        // Without a cap, an existing native setting is left alone.
        let native = NativeConfig {
            host_threads: Some(2),
            ..Default::default()
        };
        let cfg =
            ExecutionConfig::native(native).with_tuning(Tuning::new().simd(SimdMode::Chunked));
        assert_eq!(cfg.native.host_threads, Some(2));
        assert_eq!(cfg.tuning.simd, SimdMode::Chunked);
    }

    #[test]
    fn off_sink_is_disabled_ring_sink_enabled() {
        assert!(!TraceConfig::Off.make_sink(4).enabled());
        assert!(TraceConfig::ring().make_sink(4).enabled());
    }

    #[test]
    fn trace_budget_caps_rings_at_scale_only() {
        let cap = TraceConfig::DEFAULT_RING_CAPACITY;
        // Small runs keep the requested capacity verbatim.
        assert_eq!(TraceConfig::budgeted_capacity(cap, 8), cap);
        assert_eq!(TraceConfig::budgeted_capacity(cap, 255), cap);
        // At the threshold the aggregate budget takes over.
        let at_256 = TraceConfig::budgeted_capacity(cap, 256);
        assert!(at_256 < cap);
        assert!(at_256 * 257 <= TraceConfig::AGGREGATE_EVENT_BUDGET);
        // Bigger runs get smaller rings, but never below the floor.
        let at_1024 = TraceConfig::budgeted_capacity(cap, 1024);
        assert!(at_1024 <= at_256);
        assert!(at_1024 * 1025 <= TraceConfig::AGGREGATE_EVENT_BUDGET);
        assert_eq!(
            TraceConfig::budgeted_capacity(cap, 1 << 20),
            TraceConfig::MIN_RING_CAPACITY
        );
        // A caller asking for tiny rings is never inflated.
        assert_eq!(TraceConfig::budgeted_capacity(16, 1024), 16);
    }
}
