//! The kernel abstraction: what an irregular reduction loop computes.
//!
//! A kernel corresponds to the *body* of the paper's Figure-1 loop: per
//! iteration it produces contributions to one or more reduction arrays
//! through each of its `m` indirection references, possibly reading
//! per-iteration ("edge") data it owns and node-level read arrays
//! (replicated across processors, refreshed after each sweep when the
//! kernel's post-sweep step writes them — e.g. `moldyn`'s position
//! update from accumulated forces).
//!
//! The cost-profile methods (`flops_per_iter`, `edge_reads_per_iter`,
//! `node_reads_per_elem`, `post_flops_per_elem`) tell the simulator's
//! measuring sweep what to charge besides the executor's own array
//! traffic.

use std::ops::Range;

/// An irregular-reduction loop body.
///
/// Implementations must be deterministic functions of their inputs: the
/// phased executor may evaluate iterations in any order, and validation
/// relies on comparing against a sequential evaluation.
pub trait EdgeKernel: Send + Sync + 'static {
    /// Number of distinct indirection references per iteration (`m` in
    /// the paper; 2 for edge/interaction loops).
    fn num_refs(&self) -> usize {
        2
    }

    /// Number of reduction arrays updated together (the *reference
    /// group* width — e.g. 3 for a force field's x/y/z components).
    fn num_arrays(&self) -> usize {
        1
    }

    /// Number of replicated node-level read arrays (e.g. positions).
    fn num_read_arrays(&self) -> usize {
        0
    }

    /// Initial contents of the read arrays in *element-major interleaved*
    /// layout: `num_elements * num_read_arrays()` doubles, where
    /// `read[el * num_read_arrays() + a]` is read array `a` at element
    /// `el`. One struct of `num_read_arrays()` doubles per element — a
    /// kernel iteration touches one cache line per referenced element,
    /// not one per component. Called once per prepare.
    fn init_read(&self) -> Vec<f64> {
        Vec::new()
    }

    /// Whether `post_sweep` mutates the read arrays (requiring the
    /// executor to broadcast refreshed segments between sweeps). Must be
    /// constant for the lifetime of the kernel — it determines the sync
    /// graph built before execution.
    fn updates_read_state(&self) -> bool {
        false
    }

    /// Compute the contributions of (global) iteration `iter`.
    ///
    /// * `read` — the node's replicated read arrays, element-major
    ///   interleaved: `read[el * num_read_arrays() + a]` (see
    ///   [`Self::init_read`]); empty when `num_read_arrays() == 0`;
    /// * `elems` — the `m` global reduction elements this iteration
    ///   updates (original indirection values);
    /// * `out` — `num_refs() * num_arrays()` slots, laid out
    ///   `out[r * num_arrays() + a]` = contribution to array `a` through
    ///   reference `r`. All slots are pre-zeroed.
    fn contrib(&self, read: &[f64], iter: usize, elems: &[u32], out: &mut [f64]);

    /// Compute the contributions of a *chunk* of iterations into a
    /// caller-provided buffer: iteration `giters[j]` (with elements
    /// `elems[j*m..(j+1)*m]`) writes the
    /// `num_refs() * num_arrays()`-wide slot group
    /// `out[j*w..(j+1)*w]`. This is the hook of the chunked
    /// ([`SimdMode::Chunked`](crate::SimdMode)) flat loops: the default
    /// calls [`Self::contrib`] per iteration, and kernels may override
    /// it with a branchless batch body the compiler can auto-vectorize.
    ///
    /// **Contract:** an override must produce, slot for slot, the
    /// bit-identical values of `num_refs()*num_arrays()` pre-zeroed
    /// per-iteration `contrib` calls — the vector paths' bit-identity
    /// to the scalar reference rests on it (property-tested in
    /// `tests/tuning_equivalence.rs`). `out` arrives zeroed; overrides
    /// that assign every slot may rely on nothing else.
    fn contrib_batch(&self, read: &[f64], giters: &[u32], elems: &[u32], out: &mut [f64]) {
        let m = self.num_refs();
        let w = m * self.num_arrays();
        for (j, &gi) in giters.iter().enumerate() {
            self.contrib(
                read,
                gi as usize,
                &elems[j * m..(j + 1) * m],
                &mut out[j * w..(j + 1) * w],
            );
        }
    }

    /// Arithmetic cost of one `contrib` call, in floating-point ops.
    fn flops_per_iter(&self) -> u64 {
        10
    }

    /// Per-iteration data words the kernel reads (charged at the
    /// iteration's slot in the edge-data region).
    fn edge_reads_per_iter(&self) -> usize {
        1
    }

    /// Read-array words loaded per referenced element.
    fn node_reads_per_elem(&self) -> usize {
        0
    }

    /// Node-level update executed once per sweep on each portion when
    /// its reduction values are final (e.g. position integration from
    /// forces). `read` is the full interleaved read buffer (index
    /// `v * num_read_arrays() + a` for global element `v`); `x` holds
    /// the portion's final reduction values, interleaved:
    /// `x[i * num_arrays() + a]` is array `a` at element
    /// `range.start + i`. Returns whether `read` was modified.
    fn post_sweep(&self, read: &mut [f64], range: Range<usize>, x: &[f64]) -> bool {
        let _ = (read, range, x);
        false
    }

    /// Arithmetic cost of `post_sweep` per element.
    fn post_flops_per_elem(&self) -> u64 {
        0
    }
}

/// A minimal test kernel: `X[e1] += w·y[i]`, `X[e2] += 2w·y[i]` with a
/// per-iteration weight array. Used across the crate's tests.
#[derive(Debug, Clone)]
pub struct WeightedPairKernel {
    pub weights: std::sync::Arc<Vec<f64>>,
}

impl EdgeKernel for WeightedPairKernel {
    fn contrib(&self, _read: &[f64], iter: usize, _elems: &[u32], out: &mut [f64]) {
        let w = self.weights[iter];
        out[0] = w;
        out[1] = 2.0 * w;
    }

    // Branchless batch body (same arithmetic per slot as `contrib`, so
    // bit-identical): the gather + two stores per iteration
    // auto-vectorize once the bounds checks hoist.
    fn contrib_batch(&self, _read: &[f64], giters: &[u32], _elems: &[u32], out: &mut [f64]) {
        let weights = &self.weights[..];
        for (j, &gi) in giters.iter().enumerate() {
            let w = weights[gi as usize];
            out[j * 2] = w;
            out[j * 2 + 1] = 2.0 * w;
        }
    }

    fn flops_per_iter(&self) -> u64 {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn defaults_are_consistent() {
        let k = WeightedPairKernel {
            weights: Arc::new(vec![1.0, 2.0]),
        };
        assert_eq!(k.num_refs(), 2);
        assert_eq!(k.num_arrays(), 1);
        assert_eq!(k.num_read_arrays(), 0);
        assert!(!k.updates_read_state());
        assert!(k.init_read().is_empty());
    }

    #[test]
    fn contrib_layout() {
        let k = WeightedPairKernel {
            weights: Arc::new(vec![3.0]),
        };
        let mut out = [0.0; 2];
        k.contrib(&[], 0, &[5, 9], &mut out);
        assert_eq!(out, [3.0, 6.0]);
    }

    #[test]
    fn contrib_batch_override_is_bit_identical_to_contrib() {
        let k = WeightedPairKernel {
            weights: Arc::new((0..16).map(|i| 0.1 * i as f64).collect()),
        };
        let giters: Vec<u32> = vec![3, 0, 15, 7, 7, 2];
        let elems: Vec<u32> = (0..giters.len() as u32 * 2).collect();
        let mut batch = vec![0.0; giters.len() * 2];
        k.contrib_batch(&[], &giters, &elems, &mut batch);
        for (j, &gi) in giters.iter().enumerate() {
            let mut one = [0.0; 2];
            k.contrib(&[], gi as usize, &elems[j * 2..(j + 1) * 2], &mut one);
            assert_eq!(one[0].to_bits(), batch[j * 2].to_bits());
            assert_eq!(one[1].to_bits(), batch[j * 2 + 1].to_bits());
        }
    }

    #[test]
    fn default_post_sweep_is_inert() {
        let k = WeightedPairKernel {
            weights: Arc::new(vec![]),
        };
        let mut read: Vec<f64> = vec![];
        assert!(!k.post_sweep(&mut read, 0..0, &[]));
    }
}
