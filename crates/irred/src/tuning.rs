//! [`Tuning`] — every performance knob that does not change *what* is
//! computed, in one builder.
//!
//! Before this module the tuning surface was scattered:
//! `StrategyConfig::layout` picked the inner-loop layout,
//! `NativeConfig::host_threads` capped the host thread pool, and the
//! SIMD/tiling work landing alongside this module would have added two
//! more loose knobs. `Tuning` collapses them into one `Copy` struct
//! reachable uniformly through
//! [`ExecutionConfig::with_tuning`](crate::ExecutionConfig::with_tuning):
//!
//! ```
//! use irred::{ExecutionConfig, SimdMode, TileChoice, Tuning};
//! use earth_model::native::NativeConfig;
//!
//! let cfg = ExecutionConfig::native(NativeConfig::default())
//!     .with_tuning(Tuning::auto().host_threads(4));
//! assert_eq!(cfg.native.host_threads, Some(4));
//! # let _ = (SimdMode::Scalar, TileChoice::Off, cfg);
//! ```
//!
//! Two of the knobs change the *plan* (layout, tile) and two change only
//! the *execution* (simd, host_threads); [`Tuning::plan_fingerprint`]
//! folds exactly the plan-shaping knobs into prepared-plan cache keys.
//!
//! ## Determinism contract
//!
//! * [`SimdMode::Scalar`] is the bit-identical determinism reference —
//!   the PR 5 const-specialized loops, unchanged.
//! * [`SimdMode::Chunked`] and [`SimdMode::Intrinsics`] perform the
//!   identical float operations in the identical order (contributions
//!   are staged per-chunk, scattered in original iteration order;
//!   intrinsic adds are lane-independent on distinct components), so
//!   they are **bit-identical to scalar on every input**, not just
//!   whole-number weights. Property-tested in `tests/tuning_equivalence.rs`.
//! * [`TileChoice`] reorders iterations *within* a phase, which
//!   reassociates floating-point sums across tile boundaries: results
//!   are bit-identical on whole-number-weight kernels (exact f64 sums)
//!   and within the documented ULP bound otherwise (DESIGN.md §16).

use crate::strategy::LoopLayout;

/// How the flat inner loops compute and scatter contributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimdMode {
    /// The scalar determinism reference: one iteration at a time through
    /// `EdgeKernel::contrib`. The default.
    #[default]
    Scalar,
    /// Chunked auto-vectorizable kernels: contributions for a block of
    /// iterations are computed into a stack buffer via
    /// `EdgeKernel::contrib_batch` (branchless, bounds-check-free inner
    /// loops the compiler can vectorize), then scattered in original
    /// iteration order. Bit-identical to [`SimdMode::Scalar`].
    Chunked,
    /// Explicit `core::arch` SIMD for the scatter/fold adds, behind the
    /// `simd` cargo feature. Falls back to [`SimdMode::Chunked`] when
    /// the feature is off, the target is not x86_64, or the CPU lacks
    /// AVX. Lane-independent adds on distinct components: still
    /// bit-identical to scalar.
    Intrinsics,
}

impl SimdMode {
    /// The fastest mode this build can honour: [`SimdMode::Intrinsics`]
    /// when compiled with `--features simd` (it degrades to chunked at
    /// runtime if the CPU cannot honour it), otherwise
    /// [`SimdMode::Chunked`].
    pub fn preferred() -> Self {
        if cfg!(all(feature = "simd", target_arch = "x86_64")) {
            SimdMode::Intrinsics
        } else {
            SimdMode::Chunked
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            SimdMode::Scalar => "scalar",
            SimdMode::Chunked => "chunked",
            SimdMode::Intrinsics => "intrinsics",
        }
    }
}

/// Whether (and how) each portion's per-phase iteration space is tiled
/// into cache-sized sub-blocks (DESIGN.md §16: iterations are
/// stable-sorted by the cache block of their first reference, so
/// iterations within one tile keep their original relative order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TileChoice {
    /// No reordering: the inspector's phase-local iteration order, the
    /// bit-identical determinism reference. The default.
    #[default]
    Off,
    /// Predict the tile span from the memory model at prepare time
    /// (`memsim::predict_tile_elems`); tiling switches itself off when a
    /// whole portion already fits the modeled cache.
    Auto,
    /// An explicit tile span in reduction-array elements.
    Elements(usize),
}

impl TileChoice {
    pub fn label(self) -> String {
        match self {
            TileChoice::Off => "off".into(),
            TileChoice::Auto => "auto".into(),
            TileChoice::Elements(n) => format!("elems:{n}"),
        }
    }
}

/// The unified tuning bundle: loop layout, SIMD mode, tiling, and host
/// thread cap. Carried by [`ExecutionConfig`](crate::ExecutionConfig);
/// every engine reads its knobs from here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Tuning {
    /// Inner-loop layout for unmetered execution (native / sim replay).
    /// Supersedes `StrategyConfig::layout` (still honoured: the nested
    /// layout wins if either side requests it).
    pub layout: LoopLayout,
    /// How flat inner loops compute and scatter contributions.
    pub simd: SimdMode,
    /// Phase-local iteration tiling.
    pub tile: TileChoice,
    /// Cap on host OS threads, for *both* backends (`None` = backend
    /// default: one per hardware core on native, serial on the sim).
    /// Mirrored into `NativeConfig::host_threads` and
    /// `SimConfig::host_threads` by
    /// [`ExecutionConfig::with_tuning`](crate::ExecutionConfig::with_tuning).
    /// On the simulator this selects the conservative time-window
    /// parallel core, which is byte-deterministic across thread counts —
    /// an execute-time knob either way, so it stays out of
    /// [`Tuning::plan_fingerprint`].
    pub host_threads: Option<usize>,
}

impl Tuning {
    /// The determinism reference: flat layout, scalar loops, no tiling,
    /// host threads from the hardware. Identical to pre-`Tuning`
    /// behaviour.
    pub fn new() -> Self {
        Tuning::default()
    }

    /// The performance default: flat layout, the fastest SIMD mode this
    /// build honours, memory-model-predicted tiling.
    pub fn auto() -> Self {
        Tuning {
            layout: LoopLayout::Flat,
            simd: SimdMode::preferred(),
            tile: TileChoice::Auto,
            host_threads: None,
        }
    }

    /// Select the inner-loop layout.
    pub fn layout(mut self, layout: LoopLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Select the SIMD mode.
    pub fn simd(mut self, simd: SimdMode) -> Self {
        self.simd = simd;
        self
    }

    /// Select the tiling policy.
    pub fn tile(mut self, tile: TileChoice) -> Self {
        self.tile = tile;
        self
    }

    /// Cap the host thread pool (native node threads; sim event shards).
    pub fn host_threads(mut self, threads: usize) -> Self {
        self.host_threads = Some(threads);
        self
    }

    /// Short label for bench reports: `"flat+chunked+tile:auto"`.
    pub fn label(&self) -> String {
        let layout = match self.layout {
            LoopLayout::Flat => "flat",
            LoopLayout::Nested => "nested",
        };
        format!("{layout}+{}+tile:{}", self.simd.label(), self.tile.label())
    }

    /// Fold of the **plan-shaping** knobs (layout, tile) for prepared
    /// plan cache keys. SIMD mode and host threads are execute-time
    /// choices over the same plan and deliberately do not participate:
    /// a cached plan may be re-executed scalar (the server's shed
    /// ladder relies on this).
    pub fn plan_fingerprint(&self) -> u64 {
        let layout = match self.layout {
            LoopLayout::Flat => 0u64,
            LoopLayout::Nested => 1,
        };
        let tile = match self.tile {
            TileChoice::Off => 0u64,
            TileChoice::Auto => 1,
            TileChoice::Elements(n) => 2u64.wrapping_add((n as u64) << 2),
        };
        // splitmix64-style avalanche over the two words.
        let mut h = 0x9e37_79b9_7f4a_7c15u64 ^ layout;
        h ^= tile.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 30)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_determinism_reference() {
        let t = Tuning::default();
        assert_eq!(t.layout, LoopLayout::Flat);
        assert_eq!(t.simd, SimdMode::Scalar);
        assert_eq!(t.tile, TileChoice::Off);
        assert_eq!(t.host_threads, None);
        assert_eq!(t, Tuning::new());
    }

    #[test]
    fn auto_prefers_vector_and_tiled() {
        let t = Tuning::auto();
        assert_ne!(t.simd, SimdMode::Scalar);
        assert_eq!(t.tile, TileChoice::Auto);
    }

    #[test]
    fn builder_composes() {
        let t = Tuning::new()
            .layout(LoopLayout::Nested)
            .simd(SimdMode::Chunked)
            .tile(TileChoice::Elements(256))
            .host_threads(3);
        assert_eq!(t.layout, LoopLayout::Nested);
        assert_eq!(t.simd, SimdMode::Chunked);
        assert_eq!(t.tile, TileChoice::Elements(256));
        assert_eq!(t.host_threads, Some(3));
        assert_eq!(t.label(), "nested+chunked+tile:elems:256");
    }

    #[test]
    fn fingerprint_tracks_plan_knobs_only() {
        let base = Tuning::new();
        // Execute-time knobs: no fingerprint change.
        assert_eq!(
            base.plan_fingerprint(),
            base.simd(SimdMode::Chunked)
                .host_threads(7)
                .plan_fingerprint()
        );
        // Plan-shaping knobs: fingerprint changes.
        assert_ne!(
            base.plan_fingerprint(),
            base.layout(LoopLayout::Nested).plan_fingerprint()
        );
        assert_ne!(
            base.plan_fingerprint(),
            base.tile(TileChoice::Auto).plan_fingerprint()
        );
        assert_ne!(
            base.tile(TileChoice::Elements(128)).plan_fingerprint(),
            base.tile(TileChoice::Elements(256)).plan_fingerprint()
        );
    }
}
