//! The rotating-portion phased executor (§2.2 of the paper).
//!
//! One EARTH program is built per `(workload, strategy)` pair:
//!
//! * each node runs `T · k · P` *phase fibers*, chained in order on the
//!   node (the EU executes phases sequentially, as the paper's Figure 2
//!   pseudo-code does);
//! * a phase fiber additionally waits for the **arrival of the portion**
//!   it owns — sent by the ring successor `k` phases earlier, so with
//!   `k > 1` the transfer has computation to hide behind;
//! * at a portion's *first* visit of a sweep the owner zeroes it (the
//!   reduction identity) — the preceding transfer therefore carries no
//!   data, just a sync: the previous owner was the *last* visitor of the
//!   old sweep and already consumed the final values;
//! * at a portion's *last* visit the reduction values are final: the
//!   owner runs the kernel's post-sweep step (e.g. `moldyn`'s position
//!   update) and, if that step writes the replicated read arrays,
//!   broadcasts the refreshed segments — the first phase fiber of the
//!   next sweep on every node waits for those `k·P − k` messages.
//!
//! Communication per node per sweep is exactly `k·P` portion transfers
//! plus (for read-updating kernels) `k·(P−1)` broadcast segments —
//! **independent of the indirection arrays**, the paper's key property.
//!
//! The fiber body executes the LightInspector's two loops. Under the
//! simulator, the first sweep runs *metered* (every array access goes
//! through the cache model) and the measured per-phase cost is replayed
//! for the remaining sweeps, whose access pattern is identical.

use std::sync::Arc;
use std::time::Duration;

use earth_model::native::{run_native_with, NativeConfig, NativeCtx, RunError};
use earth_model::sim::{run_sim, SimConfig, SimCtx};
use earth_model::{mailbox_key, FiberCtx, FiberSpec, MachineProgram, Meter, NullMeter, RunStats, SlotId, Value};
use lightinspector::{inspect, InspectError, InspectorInput, InspectorPlan, PhaseGeometry};
use memsim::{AddressMap, Region, StreamModel};
use workloads::distribute;

use crate::kernel::EdgeKernel;
use crate::seq::seq_reduction;
use crate::strategy::StrategyConfig;

const TAG_PORTION: u32 = 1;
const TAG_BCAST: u32 = 2;

/// Problem description, independent of strategy.
pub struct PhasedSpec<K> {
    /// The loop body.
    pub kernel: Arc<K>,
    /// Length of the reduction array(s).
    pub num_elements: usize,
    /// `m` global indirection arrays, each of length `num_iterations`.
    pub indirection: Arc<Vec<Vec<u32>>>,
}

impl<K: EdgeKernel> PhasedSpec<K> {
    pub fn num_iterations(&self) -> usize {
        self.indirection[0].len()
    }
}

impl<K> std::fmt::Debug for PhasedSpec<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhasedSpec")
            .field("num_elements", &self.num_elements)
            .field("indirection", &self.indirection)
            .finish_non_exhaustive()
    }
}

/// Why a phased run failed. `Invalid` and `Shape` are caller bugs and are
/// never retried by the recovery machinery; `Run` is a (possibly
/// transient) backend failure.
#[derive(Debug)]
pub enum PhasedError {
    /// The LightInspector rejected the geometry or indirection contents.
    Invalid(InspectError),
    /// The spec's arrays disagree with each other or with the kernel.
    Shape {
        what: &'static str,
        expected: usize,
        got: usize,
    },
    /// The native backend returned a structured runtime error (panic or
    /// watchdog stall).
    Run(RunError),
}

impl std::fmt::Display for PhasedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PhasedError::Invalid(e) => write!(f, "invalid phased spec: {e}"),
            PhasedError::Shape { what, expected, got } => {
                write!(f, "malformed phased spec: {what}: expected {expected}, got {got}")
            }
            PhasedError::Run(e) => write!(f, "phased run failed: {e}"),
        }
    }
}

impl std::error::Error for PhasedError {}

impl From<InspectError> for PhasedError {
    fn from(e: InspectError) -> Self {
        PhasedError::Invalid(e)
    }
}

impl From<RunError> for PhasedError {
    fn from(e: RunError) -> Self {
        PhasedError::Run(e)
    }
}

/// How [`PhasedReduction::run_recovering`] reacts to a failed native run:
/// retry with exponential backoff up to `max_attempts` total attempts
/// (each attempt rebuilds the program from scratch), then optionally fall
/// back to the sequential executor so callers still get a correct answer.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryPolicy {
    /// Total native attempts (≥ 1) before giving up or falling back.
    pub max_attempts: u32,
    /// Sleep before the first retry; doubled (times `backoff_factor`)
    /// before each subsequent one.
    pub initial_backoff: Duration,
    pub backoff_factor: u32,
    /// After exhausting retries, run [`seq_reduction`] and return its
    /// (bit-correct) values with a warning in the report instead of an
    /// error.
    pub fall_back_to_seq: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_attempts: 2,
            initial_backoff: Duration::from_millis(2),
            backoff_factor: 2,
            fall_back_to_seq: true,
        }
    }
}

/// What the recovery ladder actually did for one call.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Native attempts made (0 when the run bypassed the recovery path).
    pub attempts: u32,
    /// Display-formatted error of each failed attempt, in order.
    pub errors: Vec<String>,
    /// The answer came from the sequential executor, not the machine.
    pub fell_back_to_seq: bool,
    /// Human-readable summary when anything non-default happened.
    pub warning: Option<String>,
}

/// Final values gathered from the machine plus run statistics.
#[derive(Debug)]
pub struct PhasedResult {
    /// Final reduction arrays (`num_arrays × num_elements`) — the values
    /// after the last sweep.
    pub x: Vec<Vec<f64>>,
    /// Final replicated read arrays (`num_read_arrays × num_elements`).
    pub read: Vec<Vec<f64>>,
    /// Simulated cycles (0 for native runs).
    pub time_cycles: u64,
    /// Simulated seconds (0 for native runs).
    pub seconds: f64,
    /// Native wall time (zero for simulated runs).
    pub wall: std::time::Duration,
    pub stats: RunStats,
    /// Per-processor, per-phase iteration counts — the load-balance
    /// signature (§5.4.2's block-vs-cyclic analysis).
    pub phase_iter_counts: Vec<Vec<usize>>,
    /// Fiber execution trace (empty unless `SimConfig::trace`).
    pub trace: Vec<earth_model::TraceEvent>,
    /// What the recovery ladder did (all-default for direct runs).
    pub recovery: RecoveryReport,
}

/// Per-node regions for the cache model. The reduction group and the
/// read arrays are modeled with array-of-structs layout (one struct of
/// `num_arrays` / `num_read_arrays` doubles per element), matching how
/// such codes store multi-component fields — one cache line per element,
/// not one per component.
struct Regions {
    x: Region,
    read: Region,
    giter: Region,
    elems: Region,
    refs: Vec<Region>,
    edge: Region,
    copies: Region,
}

/// State of one node (the "procedure frame" of the phased program).
pub struct PhasedNode<K> {
    proc: usize,
    geometry: PhaseGeometry,
    sweeps: usize,
    kernel: Arc<K>,
    plan: InspectorPlan,
    /// Global iteration ids per phase, phase-major.
    giters: Vec<Vec<u32>>,
    /// Original global element ids per phase, `m`-interleaved.
    elems: Vec<Vec<u32>>,
    /// Reduction arrays with buffer extension: `num_arrays` of
    /// `num_elements + buffer_len`.
    x: Vec<Vec<f64>>,
    /// Replicated read arrays.
    read: Vec<Vec<f64>>,
    /// Scratch for kernel contributions.
    out: Vec<f64>,
    /// Measured per-phase loop cost, replayed after the metering sweep.
    phase_cost: Vec<Option<u64>>,
    /// Cumulative start offset of each phase in the concatenated
    /// iteration order (for region addressing).
    phase_off: Vec<usize>,
    regions: Regions,
    stream: StreamModel,
    /// Modeled per-iteration / per-copy overhead of the generated phased
    /// loop code (0 on the native backend).
    iter_overhead: u64,
    copy_overhead: u64,
    /// Own post-sweep read updates, staged until the next sweep starts so
    /// that all of a sweep's iterations see sweep-start read values (the
    /// sequential semantics): `(portion, per-array segments)`.
    staged: Vec<(usize, Vec<Vec<f64>>)>,
    /// Final portions collected during the last sweep:
    /// `(portion, x segments, read segments)`.
    results: Vec<FinalPortion>,
}

/// One node's final values for one portion: `(portion, x segments, read
/// segments)`.
type FinalPortion = (usize, Vec<Vec<f64>>, Vec<Vec<f64>>);

fn slot_of(t: usize, p: usize, kp: usize) -> SlotId {
    (t * kp + p) as SlotId
}

impl<K: EdgeKernel> PhasedNode<K> {
    fn new(
        spec: &PhasedSpec<K>,
        strat: &StrategyConfig,
        proc: usize,
        local_iters: Vec<u32>,
        mem_cfg: memsim::MemConfig,
        overheads: (u64, u64),
    ) -> Result<Self, PhasedError> {
        let geometry = PhaseGeometry::try_new(strat.procs, strat.k, spec.num_elements)?;
        let m = spec.kernel.num_refs();
        // Local views of the indirection arrays.
        let local_ind: Vec<Vec<u32>> = (0..m)
            .map(|r| {
                local_iters
                    .iter()
                    .map(|&i| spec.indirection[r][i as usize])
                    .collect()
            })
            .collect();
        let refs: Vec<&[u32]> = local_ind.iter().map(|v| v.as_slice()).collect();
        let plan = inspect(InspectorInput {
            geometry,
            proc_id: proc,
            indirection: &refs,
        })?;
        debug_assert!(lightinspector::verify_plan(&plan, &refs).is_ok());

        let kp = geometry.num_phases();
        let mut giters = Vec::with_capacity(kp);
        let mut elems = Vec::with_capacity(kp);
        let mut phase_off = Vec::with_capacity(kp);
        let mut off = 0usize;
        for ph in &plan.phases {
            phase_off.push(off);
            off += ph.iters.len();
            let g: Vec<u32> = ph.iters.iter().map(|&li| local_iters[li as usize]).collect();
            let mut e = Vec::with_capacity(ph.iters.len() * m);
            for &li in &ph.iters {
                for lr in local_ind.iter() {
                    e.push(lr[li as usize]);
                }
            }
            giters.push(g);
            elems.push(e);
        }

        let n = spec.num_elements;
        let r_arrays = spec.kernel.num_arrays();
        let x = vec![vec![0.0f64; n + plan.buffer_len]; r_arrays];
        let read = spec.kernel.init_read();
        assert_eq!(read.len(), spec.kernel.num_read_arrays());
        for ra in &read {
            assert_eq!(ra.len(), n, "read arrays must span the reduction array");
        }

        let total_local = local_iters.len();
        let mut am = AddressMap::new(64);
        let regions = Regions {
            x: am.alloc_f64((n + plan.buffer_len) * r_arrays),
            read: am.alloc_f64(n * read.len().max(1)),
            giter: am.alloc_u32(total_local.max(1)),
            elems: am.alloc_u32((total_local * m).max(1)),
            refs: (0..m).map(|_| am.alloc_u32(total_local.max(1))).collect(),
            edge: am.alloc_f64(spec.num_iterations().max(1)),
            copies: am.alloc(plan.total_copies().max(1), 8),
        };

        Ok(PhasedNode {
            proc,
            geometry,
            sweeps: strat.sweeps,
            kernel: Arc::clone(&spec.kernel),
            out: vec![0.0; m * r_arrays],
            plan,
            giters,
            elems,
            x,
            read,
            phase_cost: vec![None; kp],
            phase_off,
            regions,
            stream: StreamModel::new(mem_cfg),
            iter_overhead: overheads.0,
            copy_overhead: overheads.1,
            staged: Vec::new(),
            results: Vec::new(),
        })
    }

    /// The body of phase fiber `(t, p)`.
    fn run_phase<C: FiberCtx<Self>>(s: &mut Self, t: usize, p: usize, ctx: &mut C) {
        let g = s.geometry;
        let kp = g.num_phases();
        let k = g.k();
        let portion = g.portion_owned_by(s.proc, p);
        let range = g.portion_range(portion);
        let abs = t * kp + p;
        let first_visit = p < k;
        let last_visit = p >= kp - k;
        let r_arrays = s.x.len();
        let n = g.num_elements();

        // --- portion arrival / initialization ---------------------------
        if first_visit {
            // Reduction identity: zero the freshly owned portion.
            for xa in &mut s.x {
                xa[range.clone()].fill(0.0);
            }
            if ctx.is_sim() && !range.is_empty() {
                ctx.charge(s.stream.stream((range.len() * r_arrays) as u64, 8));
            }
        } else if !range.is_empty() {
            let payload = ctx
                .recv(mailbox_key(TAG_PORTION, abs as u32))
                .expect("portion payload must have arrived");
            let vals = payload.expect_f64s();
            debug_assert_eq!(vals.len(), range.len() * r_arrays);
            // The SU deposits the payload directly into the portion's
            // memory (split-phase block move); the EU pays only the
            // first-touch misses, which the metered loops charge.
            for (a, xa) in s.x.iter_mut().enumerate() {
                let seg = &vals[a * range.len()..(a + 1) * range.len()];
                xa[range.clone()].copy_from_slice(seg);
            }
        }

        // --- read-array refresh at sweep start --------------------------
        if p == 0 && t > 0 && s.kernel.updates_read_state() {
            // Own staged updates from the previous sweep's post-sweep.
            let staged = std::mem::take(&mut s.staged);
            for (pi, segs) in staged {
                let seg_range = g.portion_range(pi);
                if seg_range.is_empty() {
                    continue;
                }
                for (a, ra) in s.read.iter_mut().enumerate() {
                    ra[seg_range.clone()].copy_from_slice(&segs[a]);
                }
            }
            // Remote segments from the other nodes' final owners.
            for pi in 0..kp {
                let owner = g.owner_at(pi, g.last_visit_phase(pi)).expect("last visit owner");
                if owner == s.proc {
                    continue; // applied from the staging buffer above
                }
                let key = mailbox_key(TAG_BCAST, ((t - 1) * kp + pi) as u32);
                let seg_range = g.portion_range(pi);
                if seg_range.is_empty() {
                    // Empty segments still arrive (zero-length) to keep the
                    // sync count uniform.
                    let _ = ctx.recv(key);
                    continue;
                }
                let payload = ctx.recv(key).expect("broadcast segment must have arrived");
                let vals = payload.expect_f64s();
                let len = seg_range.len();
                debug_assert_eq!(vals.len(), len * s.read.len());
                // SU-deposited, like portion payloads: no EU copy charge.
                for (a, ra) in s.read.iter_mut().enumerate() {
                    ra[seg_range.clone()].copy_from_slice(&vals[a * len..(a + 1) * len]);
                }
            }
        }

        // --- the two loops, metered once per phase ----------------------
        if ctx.is_sim() {
            match s.phase_cost[p] {
                Some(c) => {
                    s.exec_loops(p, &mut NullMeter);
                    ctx.charge(c);
                }
                None => {
                    let before = ctx.charged();
                    let mut meter = earth_model::program::CtxMeter::<Self, C>::new(ctx);
                    // Split borrow: meter wraps ctx; loops touch the rest.
                    s.exec_loops_metered(p, &mut meter);
                    let cost = ctx.charged() - before;
                    // Sweep 0 runs on a cold cache; re-measure on sweep 1
                    // and replay that steady-state cost thereafter.
                    if t > 0 || s.sweeps == 1 {
                        s.phase_cost[p] = Some(cost);
                    }
                }
            }
        } else {
            s.exec_loops(p, &mut NullMeter);
        }
        // Generated-code overhead of the phased loops (see SimConfig).
        if ctx.is_sim() {
            ctx.charge(
                s.giters[p].len() as u64 * s.iter_overhead
                    + s.plan.phases[p].copies.len() as u64 * s.copy_overhead,
            );
        }

        // --- post-sweep on final values ----------------------------------
        if last_visit {
            // Run the kernel's node-level update, but *stage* its writes
            // to the read arrays: the rest of this sweep (later phases on
            // this node) must keep seeing sweep-start read values, exactly
            // as a sequential time step would.
            let mut updated: Vec<Vec<f64>> = Vec::new();
            if !range.is_empty() {
                let snapshot: Vec<Vec<f64>> =
                    s.read.iter().map(|ra| ra[range.clone()].to_vec()).collect();
                let xs: Vec<&[f64]> = s.x.iter().map(|xa| &xa[range.clone()]).collect();
                let changed = s.kernel.post_sweep(&mut s.read, range.clone(), &xs);
                if ctx.is_sim() {
                    ctx.flops(range.len() as u64 * s.kernel.post_flops_per_elem());
                }
                debug_assert_eq!(changed, s.kernel.updates_read_state());
                if changed {
                    updated = s.read.iter().map(|ra| ra[range.clone()].to_vec()).collect();
                    for (ra, snap) in s.read.iter_mut().zip(&snapshot) {
                        ra[range.clone()].copy_from_slice(snap);
                    }
                }
            }
            // Broadcast the refreshed segments for the next sweep and
            // stage our own copy.
            if s.kernel.updates_read_state() && t + 1 < s.sweeps {
                let len = range.len();
                let mut seg = Vec::with_capacity(len * s.read.len());
                for u in &updated {
                    seg.extend_from_slice(u);
                }
                // Keyed by (sweep, portion): the receiver's sweep-start
                // fiber iterates portions, not phases.
                let key = mailbox_key(TAG_BCAST, (t * kp + portion) as u32);
                let dst_slot = slot_of(t + 1, 0, kp);
                for d in 0..g.num_procs() {
                    if d != s.proc {
                        ctx.data_sync(d, key, Value::F64s(seg.clone().into_boxed_slice()), dst_slot);
                    }
                }
                s.staged.push((portion, updated.clone()));
            }
            // Keep final values after the last sweep. The read segments
            // are the *updated* ones: the last time step's node update has
            // happened, matching the sequential executor.
            if t + 1 == s.sweeps {
                let xs: Vec<Vec<f64>> = s.x.iter().map(|xa| xa[range.clone()].to_vec()).collect();
                let rs: Vec<Vec<f64>> = if s.kernel.updates_read_state() {
                    updated
                } else {
                    s.read.iter().map(|ra| ra[range.clone()].to_vec()).collect()
                };
                s.results.push((portion, xs, rs));
            }
        }

        // --- forward the portion around the ring -------------------------
        let next_abs = abs + k;
        if next_abs < s.sweeps * kp {
            let dest = g.next_owner(s.proc);
            let dst_slot = next_abs as SlotId;
            if last_visit || range.is_empty() {
                // Next visit starts a new sweep (receiver zeroes) or the
                // portion is empty: a bare sync suffices.
                ctx.sync(dest, dst_slot);
            } else {
                let mut payload = Vec::with_capacity(range.len() * r_arrays);
                for xa in &s.x {
                    payload.extend_from_slice(&xa[range.clone()]);
                }
                ctx.data_sync(
                    dest,
                    mailbox_key(TAG_PORTION, next_abs as u32),
                    Value::F64s(payload.into_boxed_slice()),
                    dst_slot,
                );
            }
        }

        // --- enable the next phase on this node --------------------------
        if abs + 1 < s.sweeps * kp {
            ctx.sync(s.proc, (abs + 1) as SlotId);
        }
        let _ = n;
    }

    /// Loop 1 + loop 2 without metering.
    fn exec_loops(&mut self, p: usize, meter: &mut NullMeter) {
        let (plan, giters, elems) = (&self.plan, &self.giters[p], &self.elems[p]);
        loops(
            &*self.kernel,
            &self.read,
            &mut self.x,
            giters,
            elems,
            &plan.phases[p],
            &mut self.out,
            &self.regions,
            self.phase_off[p],
            meter,
        );
    }

    /// Loop 1 + loop 2 with full cache metering.
    fn exec_loops_metered<M: Meter>(&mut self, p: usize, meter: &mut M) {
        let (plan, giters, elems) = (&self.plan, &self.giters[p], &self.elems[p]);
        loops(
            &*self.kernel,
            &self.read,
            &mut self.x,
            giters,
            elems,
            &plan.phases[p],
            &mut self.out,
            &self.regions,
            self.phase_off[p],
            meter,
        );
    }
}

/// The inner loops, written once and monomorphized over the meter.
#[allow(clippy::too_many_arguments)]
fn loops<K: EdgeKernel, M: Meter>(
    kernel: &K,
    read: &[Vec<f64>],
    x: &mut [Vec<f64>],
    giters: &[u32],
    elems: &[u32],
    phase: &lightinspector::PhasePlan,
    out: &mut [f64],
    regs: &Regions,
    phase_off: usize,
    meter: &mut M,
) {
    let m = phase.refs.len();
    let r_arrays = x.len();
    let n_read = read.len();
    let edge_reads = kernel.edge_reads_per_iter();
    let node_reads = kernel.node_reads_per_elem();
    let flops = kernel.flops_per_iter();

    // Loop 1: compute contributions and scatter them into the resident
    // portion or the buffer extension.
    for (j, &gi) in giters.iter().enumerate() {
        let pos = phase_off + j;
        meter.load(regs.giter.addr(pos));
        let e = &elems[j * m..(j + 1) * m];
        for (r, &el) in e.iter().enumerate() {
            meter.load(regs.elems.addr(pos * m + r));
            for w in 0..node_reads {
                meter.load(regs.read.addr(el as usize * n_read.max(1) + w % n_read.max(1)));
            }
        }
        for w in 0..edge_reads {
            let _ = w;
            meter.load(regs.edge.addr(gi as usize));
        }
        out.fill(0.0);
        kernel.contrib(read, gi as usize, e, out);
        meter.flops(flops);
        for r in 0..m {
            let tgt = phase.refs[r][j] as usize;
            meter.load(regs.refs[r].addr(pos));
            for (a, xa) in x.iter_mut().enumerate() {
                xa[tgt] += out[r * r_arrays + a];
                meter.load(regs.x.addr(tgt * r_arrays + a));
                meter.store(regs.x.addr(tgt * r_arrays + a));
                meter.flops(1);
            }
        }
    }

    // Loop 2: fold buffered contributions into the now-resident portion
    // and reset the buffer slots for the next sweep.
    for (ci, c) in phase.copies.iter().enumerate() {
        meter.load(regs.copies.addr(ci));
        for (a, xa) in x.iter_mut().enumerate() {
            let v = xa[c.src as usize];
            xa[c.dest as usize] += v;
            xa[c.src as usize] = 0.0;
            meter.load(regs.x.addr(c.src as usize * r_arrays + a));
            meter.load(regs.x.addr(c.dest as usize * r_arrays + a));
            meter.store(regs.x.addr(c.dest as usize * r_arrays + a));
            meter.store(regs.x.addr(c.src as usize * r_arrays + a));
            meter.flops(1);
        }
    }
}

/// Compute the sync count of phase fiber `(t, p)`.
fn sync_count(
    t: usize,
    p: usize,
    k: usize,
    kp: usize,
    updates_read: bool,
) -> u32 {
    let mut c = 0u32;
    if !(t == 0 && p == 0) {
        c += 1; // chain from the previous phase on this node
    }
    if !(t == 0 && p < k) {
        c += 1; // portion arrival (data or bare sync)
    }
    if p == 0 && t > 0 && updates_read {
        c += (kp - k) as u32; // broadcast segments from the previous sweep
    }
    c
}

/// Check the spec's global arrays against each other and the kernel
/// before any per-node indexing happens.
fn validate_spec<K: EdgeKernel>(spec: &PhasedSpec<K>) -> Result<(), PhasedError> {
    let m = spec.kernel.num_refs();
    if spec.indirection.len() != m {
        return Err(PhasedError::Shape {
            what: "indirection arrays (kernel.num_refs)",
            expected: m,
            got: spec.indirection.len(),
        });
    }
    if m == 0 {
        return Err(PhasedError::Invalid(InspectError::NoReferences));
    }
    let iters = spec.indirection[0].len();
    for arr in spec.indirection.iter() {
        if arr.len() != iters {
            return Err(PhasedError::Shape {
                what: "indirection array length",
                expected: iters,
                got: arr.len(),
            });
        }
    }
    Ok(())
}

/// Build the whole-machine program for a `(spec, strategy)` pair,
/// generic over the backend context. Rejects malformed specs (ragged or
/// miscounted indirection arrays, out-of-range elements, degenerate
/// geometry) with a typed [`PhasedError`] before any fiber runs.
pub fn build_program<K: EdgeKernel, C: FiberCtx<PhasedNode<K>> + 'static>(
    spec: &PhasedSpec<K>,
    strat: &StrategyConfig,
    mem_cfg: memsim::MemConfig,
    overheads: (u64, u64),
) -> Result<MachineProgram<PhasedNode<K>, C>, PhasedError> {
    validate_spec(spec)?;
    // n < k·P is legal: trailing portions are empty and their phases
    // degenerate to bare synchronization (PhaseGeometry handles this).
    let owned = distribute(spec.num_iterations(), strat.procs, strat.distribution);
    let kp = strat.phases_per_sweep();
    let k = strat.k;
    let updates_read = spec.kernel.updates_read_state();

    let mut prog = MachineProgram::new();
    for (proc, proc_owned) in owned.iter().enumerate().take(strat.procs) {
        let node = PhasedNode::new(spec, strat, proc, proc_owned.clone(), mem_cfg, overheads)?;
        let id = prog.add_node(node);
        for t in 0..strat.sweeps {
            for p in 0..kp {
                let count = sync_count(t, p, k, kp, updates_read);
                prog.node_mut(id).add_fiber(FiberSpec::new(
                    "phase",
                    count,
                    move |s: &mut PhasedNode<K>, ctx: &mut C| {
                        PhasedNode::run_phase(s, t, p, ctx);
                    },
                ));
            }
        }
    }
    Ok(prog)
}

/// `(x arrays, read arrays, per-node phase iteration counts)`.
type AssembledArrays = (Vec<Vec<f64>>, Vec<Vec<f64>>, Vec<Vec<usize>>);

/// Assemble global arrays from per-node final portions.
fn assemble<K: EdgeKernel>(
    spec: &PhasedSpec<K>,
    nodes: Vec<PhasedNode<K>>,
) -> AssembledArrays {
    let n = spec.num_elements;
    let r_arrays = spec.kernel.num_arrays();
    let r_read = spec.kernel.num_read_arrays();
    let mut x = vec![vec![0.0f64; n]; r_arrays];
    let mut read = vec![vec![0.0f64; n]; r_read];
    let mut counts = Vec::with_capacity(nodes.len());
    for node in nodes {
        counts.push(node.plan.phase_iter_counts());
        for (portion, xs, rs) in node.results {
            let range = node.geometry.portion_range(portion);
            for (a, seg) in xs.into_iter().enumerate() {
                x[a][range.clone()].copy_from_slice(&seg);
            }
            for (a, seg) in rs.into_iter().enumerate() {
                read[a][range.clone()].copy_from_slice(&seg);
            }
        }
    }
    (x, read, counts)
}

/// Entry point for phased execution.
pub struct PhasedReduction;

impl PhasedReduction {
    /// Run on the discrete-event simulator, returning simulated time.
    pub fn run_sim<K: EdgeKernel>(
        spec: &PhasedSpec<K>,
        strat: &StrategyConfig,
        cfg: SimConfig,
    ) -> PhasedResult {
        let prog = build_program::<K, SimCtx<PhasedNode<K>>>(
            spec,
            strat,
            cfg.mem,
            (cfg.phased_iter_overhead_cycles, cfg.phased_copy_overhead_cycles),
        )
        .unwrap_or_else(|e| panic!("phased program build failed: {e}"));
        let report = run_sim(prog, cfg);
        assert_eq!(report.stats.unfired_fibers, 0, "phase fiber starved");
        let (x, read, counts) = assemble(spec, report.states);
        PhasedResult {
            x,
            read,
            time_cycles: report.time_cycles,
            seconds: report.seconds,
            wall: std::time::Duration::ZERO,
            stats: report.stats,
            phase_iter_counts: counts,
            trace: report.trace,
            recovery: RecoveryReport::default(),
        }
    }

    /// Run on real OS threads (one per simulated node).
    pub fn run_native<K: EdgeKernel>(
        spec: &PhasedSpec<K>,
        strat: &StrategyConfig,
    ) -> Result<PhasedResult, PhasedError> {
        Self::run_native_with(spec, strat, NativeConfig::default())
    }

    /// Like [`Self::run_native`] but with an explicit backend
    /// configuration (watchdog deadline, fault plan). A starved machine —
    /// a phase fiber whose sync never arrives, e.g. because a fault plan
    /// dropped the message — is always reported as
    /// [`RunError::Stalled`][earth_model::native::RunError], never as a
    /// silently short result: the phased program has no legitimate
    /// unfired fibers.
    pub fn run_native_with<K: EdgeKernel>(
        spec: &PhasedSpec<K>,
        strat: &StrategyConfig,
        cfg: NativeConfig,
    ) -> Result<PhasedResult, PhasedError> {
        let prog =
            build_program::<K, NativeCtx<PhasedNode<K>>>(spec, strat, memsim::MemConfig::i860xp(), (0, 0))?;
        let cfg = NativeConfig {
            starved_is_error: true,
            ..cfg
        };
        let report = run_native_with(prog, cfg)?;
        let (x, read, counts) = assemble(spec, report.states);
        Ok(PhasedResult {
            x,
            read,
            time_cycles: 0,
            seconds: 0.0,
            wall: report.wall,
            stats: report.stats,
            phase_iter_counts: counts,
            trace: Vec::new(),
            recovery: RecoveryReport::default(),
        })
    }

    /// Run natively under a [`RecoveryPolicy`]: retry failed runs with
    /// exponential backoff (rebuilding the program each time and, when a
    /// fault plan is configured, reseeding it per attempt), then fall
    /// back to the sequential executor. Callers always get a bit-correct
    /// answer or a typed error — never a hang, never silent corruption.
    pub fn run_recovering<K: EdgeKernel>(
        spec: &PhasedSpec<K>,
        strat: &StrategyConfig,
        policy: RecoveryPolicy,
        cfg: NativeConfig,
    ) -> Result<PhasedResult, PhasedError> {
        Self::run_recovering_with(spec, strat, policy, |attempt| {
            let mut c = cfg;
            if attempt > 0 {
                if let Some(f) = c.faults {
                    c.faults = Some(f.reseeded(attempt as u64));
                }
            }
            c
        })
    }

    /// The general form of [`Self::run_recovering`]: the caller chooses
    /// the backend configuration of each attempt (attempt numbers start
    /// at 0). Invalid-spec errors are returned immediately — retrying a
    /// caller bug cannot succeed; only runtime failures walk the ladder.
    pub fn run_recovering_with<K: EdgeKernel>(
        spec: &PhasedSpec<K>,
        strat: &StrategyConfig,
        policy: RecoveryPolicy,
        cfg_for_attempt: impl Fn(u32) -> NativeConfig,
    ) -> Result<PhasedResult, PhasedError> {
        let mut report = RecoveryReport::default();
        let mut last_err: Option<RunError> = None;
        let mut backoff = policy.initial_backoff;
        for attempt in 0..policy.max_attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(backoff);
                backoff *= policy.backoff_factor.max(1);
            }
            report.attempts = attempt + 1;
            match Self::run_native_with(spec, strat, cfg_for_attempt(attempt)) {
                Ok(mut res) => {
                    if attempt > 0 {
                        report.warning = Some(format!(
                            "parallel run succeeded on attempt {} after: {}",
                            attempt + 1,
                            report.errors.join("; ")
                        ));
                    }
                    res.recovery = report;
                    return Ok(res);
                }
                Err(PhasedError::Run(e)) => {
                    report.errors.push(e.to_string());
                    last_err = Some(e);
                }
                // Caller bugs: no retry can fix the spec.
                Err(e) => return Err(e),
            }
        }
        if policy.fall_back_to_seq {
            let seq = seq_reduction(spec, strat.sweeps, SimConfig::default());
            report.fell_back_to_seq = true;
            report.warning = Some(format!(
                "parallel run failed {} attempt(s) ({}); result computed by the sequential executor",
                report.attempts,
                report.errors.join("; ")
            ));
            Ok(PhasedResult {
                x: seq.x,
                read: seq.read,
                time_cycles: seq.cycles,
                seconds: seq.seconds,
                wall: Duration::ZERO,
                stats: RunStats::default(),
                phase_iter_counts: Vec::new(),
                trace: Vec::new(),
                recovery: report,
            })
        } else {
            Err(PhasedError::Run(last_err.expect("at least one attempt ran")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::WeightedPairKernel;
    use crate::seq::seq_reduction;
    use crate::approx_eq;
    use workloads::Distribution;

    fn tiny_spec(num_elems: usize, seed: u64, iters: usize) -> PhasedSpec<WeightedPairKernel> {
        let mut s = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let ia1: Vec<u32> = (0..iters).map(|_| (next() % num_elems as u64) as u32).collect();
        let ia2: Vec<u32> = (0..iters).map(|_| (next() % num_elems as u64) as u32).collect();
        let weights: Vec<f64> = (0..iters).map(|_| (next() % 1000) as f64 / 100.0).collect();
        PhasedSpec {
            kernel: Arc::new(WeightedPairKernel {
                weights: Arc::new(weights),
            }),
            num_elements: num_elems,
            indirection: Arc::new(vec![ia1, ia2]),
        }
    }

    fn check_matches_seq(spec: &PhasedSpec<WeightedPairKernel>, strat: StrategyConfig) {
        let seq = seq_reduction(spec, strat.sweeps, SimConfig::default());
        let res = PhasedReduction::run_sim(spec, &strat, SimConfig::default());
        assert!(
            approx_eq(&res.x[0], &seq.x[0], 1e-9),
            "phased vs sequential mismatch for {}P {}",
            strat.procs,
            strat.label()
        );
    }

    #[test]
    fn two_procs_k2_matches_sequential() {
        let spec = tiny_spec(32, 1, 200);
        check_matches_seq(&spec, StrategyConfig::new(2, 2, Distribution::Cyclic, 3));
    }

    #[test]
    fn one_proc_degenerate_case() {
        let spec = tiny_spec(16, 2, 50);
        check_matches_seq(&spec, StrategyConfig::new(1, 2, Distribution::Block, 2));
    }

    #[test]
    fn k1_matches_sequential() {
        let spec = tiny_spec(24, 3, 120);
        check_matches_seq(&spec, StrategyConfig::new(3, 1, Distribution::Block, 2));
    }

    #[test]
    fn k4_block_matches_sequential() {
        let spec = tiny_spec(64, 4, 500);
        check_matches_seq(&spec, StrategyConfig::new(4, 4, Distribution::Block, 2));
    }

    #[test]
    fn many_procs_cyclic() {
        let spec = tiny_spec(64, 5, 400);
        check_matches_seq(&spec, StrategyConfig::new(8, 2, Distribution::Cyclic, 3));
    }

    #[test]
    fn single_sweep() {
        let spec = tiny_spec(32, 6, 100);
        check_matches_seq(&spec, StrategyConfig::new(4, 2, Distribution::Cyclic, 1));
    }

    #[test]
    fn native_backend_matches_sequential() {
        let spec = tiny_spec(32, 7, 200);
        let strat = StrategyConfig::new(2, 2, Distribution::Cyclic, 3);
        let seq = seq_reduction(&spec, strat.sweeps, SimConfig::default());
        let res = PhasedReduction::run_native(&spec, &strat).unwrap();
        assert!(approx_eq(&res.x[0], &seq.x[0], 1e-9));
    }

    #[test]
    fn k2_overlaps_better_than_k1() {
        // On several processors with nontrivial portions, k=2 should beat
        // k=1 thanks to communication/computation overlap.
        let spec = tiny_spec(4096, 8, 20_000);
        let t1 = PhasedReduction::run_sim(
            &spec,
            &StrategyConfig::new(8, 1, Distribution::Cyclic, 3),
            SimConfig::default(),
        )
        .time_cycles;
        let t2 = PhasedReduction::run_sim(
            &spec,
            &StrategyConfig::new(8, 2, Distribution::Cyclic, 3),
            SimConfig::default(),
        )
        .time_cycles;
        assert!(t2 < t1, "k=2 ({t2}) should beat k=1 ({t1})");
    }

    #[test]
    fn communication_independent_of_indirection() {
        // Two specs with identical sizes but different indirection
        // contents must move exactly the same number of bytes.
        let a = tiny_spec(256, 10, 2_000);
        let b = tiny_spec(256, 11, 2_000);
        let strat = StrategyConfig::new(4, 2, Distribution::Block, 2);
        let ra = PhasedReduction::run_sim(&a, &strat, SimConfig::default());
        let rb = PhasedReduction::run_sim(&b, &strat, SimConfig::default());
        assert_eq!(ra.stats.ops.messages, rb.stats.ops.messages);
        assert_eq!(ra.stats.ops.bytes, rb.stats.ops.bytes);
    }

    #[test]
    fn phase_counts_reported() {
        let spec = tiny_spec(64, 12, 300);
        let strat = StrategyConfig::new(4, 2, Distribution::Cyclic, 1);
        let res = PhasedReduction::run_sim(&spec, &strat, SimConfig::default());
        assert_eq!(res.phase_iter_counts.len(), 4);
        let total: usize = res.phase_iter_counts.iter().flatten().sum();
        assert_eq!(total, 300);
    }
}
