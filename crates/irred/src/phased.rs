//! The rotating-portion phased executor (§2.2 of the paper).
//!
//! One *prepared run* is built per `(workload, strategy)` pair — the
//! LightInspector plans, the remapped indirection arrays, and the EARTH
//! program template — and then executed any number of times:
//!
//! * each node runs `T · k · P` *phase fibers*, chained in order on the
//!   node (the EU executes phases sequentially, as the paper's Figure 2
//!   pseudo-code does);
//! * a phase fiber additionally waits for the **arrival of the portion**
//!   it owns — sent by the ring successor `k` phases earlier, so with
//!   `k > 1` the transfer has computation to hide behind;
//! * at a portion's *first* visit of a sweep the owner zeroes it (the
//!   reduction identity) — the preceding transfer therefore carries no
//!   data, just a sync: the previous owner was the *last* visitor of the
//!   old sweep and already consumed the final values;
//! * at a portion's *last* visit the reduction values are final: the
//!   owner runs the kernel's post-sweep step (e.g. `moldyn`'s position
//!   update) and, if that step writes the replicated read arrays,
//!   broadcasts the refreshed segments — the first phase fiber of the
//!   next sweep on every node waits for those `k·P − k` messages.
//!
//! Communication per node per sweep is exactly `k·P` portion transfers
//! plus (for read-updating kernels) `k·(P−1)` broadcast segments —
//! **independent of the indirection arrays**, the paper's key property.
//!
//! The fiber body executes the LightInspector's two loops. Under the
//! simulator, the first sweep of a cold run is *metered* (every array
//! access goes through the cache model) and the measured per-phase cost
//! is replayed for subsequent identical sweeps; executes of an
//! already-measured prepared plan replay the cached steady-state costs
//! via the [`Workspace`] and skip metering entirely.

use std::cell::UnsafeCell;
use std::ops::Range;
use std::sync::Arc;

use earth_model::native::{run_native_traced, NativeConfig, NativeCtx};
use earth_model::sim::{run_sim_traced, SimConfig, SimCtx};
use earth_model::{
    mailbox_key, FiberCtx, FiberTemplate, Meter, NullMeter, ProgramTemplate, SlotId, TraceSink,
    Value,
};
use lightinspector::{IncrementalInspector, InspectError, InspectorPlan, PhaseGeometry};
use memsim::{AddressMap, Region, StreamModel};
use trace::{TraceEvent, TraceKind};
use workloads::{distribute, Distribution};

use crate::config::{BackendKind, ExecutionConfig, TraceConfig};
use crate::engine::{
    attempt_faults, run_recovery_ladder, validate_phased_spec, EngineError, Provenance,
    ReductionEngine, RunOutcome,
};
use crate::kernel::EdgeKernel;
use crate::prepared::{PhaseCosts, PlanToken, Workspace};
use crate::seq::seq_reduction;
use crate::strategy::{LoopLayout, StrategyConfig};
use crate::tuning::{SimdMode, TileChoice, Tuning};
use crate::vector;

// Compatibility names: the error and recovery types moved to the shared
// engine layer (crate::engine); these aliases keep old paths working.
pub use crate::engine::EngineError as PhasedError;
pub use crate::engine::{RecoveryPolicy, RecoveryReport};

const TAG_PORTION: u32 = 1;
const TAG_BCAST: u32 = 2;

/// Problem description, independent of strategy.
pub struct PhasedSpec<K> {
    /// The loop body.
    pub kernel: Arc<K>,
    /// Length of the reduction array(s).
    pub num_elements: usize,
    /// `m` global indirection arrays, each of length `num_iterations`.
    pub indirection: Arc<Vec<Vec<u32>>>,
}

impl<K: EdgeKernel> PhasedSpec<K> {
    pub fn num_iterations(&self) -> usize {
        self.indirection[0].len()
    }

    /// Structure hash of this spec under `strat`: a 64-bit digest of
    /// everything inspection depends on — element count, kernel *shape*
    /// (ref/array counts and whether it updates read state), the full
    /// indirection contents, and every strategy field. Two (spec,
    /// strategy) pairs with the same hash prepare to interchangeable
    /// plans; kernel *values* (weights, read state) deliberately do not
    /// participate, so a cached [`PreparedPhased`] can serve specs that
    /// differ only in values via [`PreparedPhased::set_kernel`].
    pub fn structure_hash(&self, strat: &StrategyConfig) -> u64 {
        // "IRED" tag | hash-format version: bump if the fold order or
        // field set changes, so stale cross-process keys never collide.
        let mut h: u64 = 0x4952_4544_0000_0001;
        fold64(&mut h, self.num_elements as u64);
        fold64(&mut h, self.kernel.num_refs() as u64);
        fold64(&mut h, self.kernel.num_arrays() as u64);
        fold64(&mut h, self.kernel.num_read_arrays() as u64);
        fold64(&mut h, u64::from(self.kernel.updates_read_state()));
        fold64(&mut h, self.indirection.len() as u64);
        for arr in self.indirection.iter() {
            fold64(&mut h, arr.len() as u64);
            for &e in arr {
                fold64(&mut h, u64::from(e));
            }
        }
        fold64(&mut h, strat.procs as u64);
        fold64(&mut h, strat.k as u64);
        fold64(
            &mut h,
            match strat.distribution {
                Distribution::Block => 0,
                Distribution::Cyclic => 1,
            },
        );
        fold64(&mut h, strat.sweeps as u64);
        fold64(
            &mut h,
            match strat.layout {
                LoopLayout::Flat => 0,
                LoopLayout::Nested => 1,
            },
        );
        h
    }
}

/// Fold one word into a running structure hash. The state is replaced
/// by the splitmix64 *output*, so single-bit input differences
/// avalanche across the whole word before the next fold.
fn fold64(h: &mut u64, word: u64) {
    *h ^= word;
    *h = harness::rng::splitmix64(h);
}

impl<K> Clone for PhasedSpec<K> {
    fn clone(&self) -> Self {
        PhasedSpec {
            kernel: Arc::clone(&self.kernel),
            num_elements: self.num_elements,
            indirection: Arc::clone(&self.indirection),
        }
    }
}

impl<K> std::fmt::Debug for PhasedSpec<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhasedSpec")
            .field("num_elements", &self.num_elements)
            .field("indirection", &self.indirection)
            .finish_non_exhaustive()
    }
}

/// Per-node regions for the cache model. The reduction group and the
/// read arrays are modeled with array-of-structs layout (one struct of
/// `num_arrays` / `num_read_arrays` doubles per element), matching how
/// such codes store multi-component fields — one cache line per element,
/// not one per component.
struct Regions {
    x: Region,
    read: Region,
    giter: Region,
    elems: Region,
    refs: Vec<Region>,
    edge: Region,
    copies: Region,
}

/// The immutable, reusable part of one node: the inspector plan and the
/// addressing derived from it. Shared (`Arc`) between the prepared run
/// and every node state instantiated from it, and rebuilt only when an
/// incremental mesh update dirties the node.
struct NodePlanData {
    geometry: PhaseGeometry,
    plan: InspectorPlan,
    /// Flattened CSR-style schedule derived from `plan` (iter-major
    /// `m`-interleaved refs + concatenated copy ops) — the fast path
    /// streams these contiguously instead of walking the nested plan.
    flat: lightinspector::FlatPlan,
    /// Global iteration ids per phase, phase-major.
    giters: Vec<Vec<u32>>,
    /// Original global element ids per phase, `m`-interleaved.
    elems: Vec<Vec<u32>>,
    /// Cumulative start offset of each phase in the concatenated
    /// iteration order (for region addressing).
    phase_off: Vec<usize>,
    regions: Regions,
}

/// Stable phase-local tiling: reorder each phase's iterations so that
/// scatters landing in the same `span`-element block of the local
/// reduction index space happen together (and likewise cluster the
/// copy-folds by destination block). The sort key is the *first*
/// reference's target block — the reference-group layout makes that the
/// line the iteration is guaranteed to touch — and the sort is stable,
/// so within one tile block iterations keep their original relative
/// order (the property `PreparedPhased::phase_order` exposes and
/// `tests/tuning_equivalence.rs` proves).
///
/// Tiling reorders *within a phase only*: phase membership, portion
/// ownership, and the communication schedule are untouched, so
/// `verify_plan` invariants are preserved by construction. It does
/// reassociate each element's partial sums across tiles — exact on
/// whole-number weights, ULP-bounded otherwise (see DESIGN.md §16).
fn tile_plan(plan: &mut InspectorPlan, span: usize) {
    let span = span.max(1) as u32;
    for ph in &mut plan.phases {
        let n = ph.iters.len();
        if n > 1 {
            let mut order: Vec<u32> = (0..n as u32).collect();
            let key = &ph.refs[0];
            order.sort_by_key(|&j| key[j as usize] / span);
            ph.iters = order.iter().map(|&j| ph.iters[j as usize]).collect();
            for col in &mut ph.refs {
                let tiled: Vec<u32> = order.iter().map(|&j| col[j as usize]).collect();
                *col = tiled;
            }
        }
        ph.copies.sort_by_key(|c| c.dest / span);
    }
}

/// Resolve the [`TileChoice`] into a concrete span for this prepare:
/// `Auto` predicts from the backend's cache geometry (the simulator's
/// configured model, or a conservative host L2 for native runs) and
/// declines to tile when a whole portion already fits; an explicit
/// `Elements` request is honoured as given.
fn resolve_tile_span<K: EdgeKernel>(
    tuning: &Tuning,
    cfg: &ExecutionConfig,
    geometry: &PhaseGeometry,
    kernel: &K,
) -> Option<usize> {
    match tuning.tile {
        TileChoice::Off => None,
        TileChoice::Elements(s) => Some(s.max(1)),
        TileChoice::Auto => {
            let mem = match cfg.backend {
                BackendKind::Sim => cfg.sim.mem,
                BackendKind::Native => memsim::MemConfig::host_l2(),
            };
            let span =
                memsim::predict_tile_elems(&mem, kernel.num_arrays(), kernel.num_read_arrays());
            (span < geometry.portion_size()).then_some(span)
        }
    }
}

impl NodePlanData {
    /// Derive the frozen per-node data from an (incremental) inspector
    /// state.
    fn from_inspector<K: EdgeKernel>(
        insp: &IncrementalInspector,
        local_iters: &[u32],
        spec_elems: usize,
        total_iterations: usize,
        kernel: &K,
        tile_span: Option<usize>,
    ) -> NodePlanData {
        let plan = insp.plan().clone();
        let flat = plan.flatten();
        Self::from_parts(
            plan,
            flat,
            insp.indirection(),
            local_iters,
            spec_elems,
            total_iterations,
            kernel,
            tile_span,
        )
    }

    /// Derive the frozen per-node data from an already-validated plan
    /// and its flattened form — the entry point for adopting plans
    /// emitted directly in CSR form (e.g. by the `threadedc` compiler)
    /// without re-flattening. `flat` must equal `plan.flatten()`; the
    /// adoption path guarantees this because [`InspectorPlan::from_flat`]
    /// is `flatten`'s exact inverse.
    #[allow(clippy::too_many_arguments)]
    fn from_parts<K: EdgeKernel>(
        mut plan: InspectorPlan,
        flat: lightinspector::FlatPlan,
        local_ind: &[Vec<u32>],
        local_iters: &[u32],
        spec_elems: usize,
        total_iterations: usize,
        kernel: &K,
        tile_span: Option<usize>,
    ) -> NodePlanData {
        debug_assert_eq!(flat, plan.flatten());
        // Tiling happens here, on the frozen snapshot: the inspector's
        // own plan stays in inspection order, so incremental updates
        // keep working and `refresh_dirty` re-tiles rebuilt nodes.
        let flat = match tile_span {
            Some(span) => {
                tile_plan(&mut plan, span);
                plan.flatten()
            }
            None => flat,
        };
        let m = kernel.num_refs();
        let kp = plan.geometry.num_phases();
        let mut giters = Vec::with_capacity(kp);
        let mut elems = Vec::with_capacity(kp);
        let mut phase_off = Vec::with_capacity(kp);
        let mut off = 0usize;
        for ph in &plan.phases {
            phase_off.push(off);
            off += ph.iters.len();
            let g: Vec<u32> = ph
                .iters
                .iter()
                .map(|&li| local_iters[li as usize])
                .collect();
            let mut e = Vec::with_capacity(ph.iters.len() * m);
            for &li in &ph.iters {
                for lr in local_ind.iter() {
                    e.push(lr[li as usize]);
                }
            }
            giters.push(g);
            elems.push(e);
        }

        let n = spec_elems;
        let r_arrays = kernel.num_arrays();
        let n_read = kernel.num_read_arrays();
        let total_local = local_iters.len();
        let mut am = AddressMap::new(64);
        let regions = Regions {
            x: am.alloc_f64((n + plan.buffer_len) * r_arrays),
            read: am.alloc_f64(n * n_read.max(1)),
            giter: am.alloc_u32(total_local.max(1)),
            elems: am.alloc_u32((total_local * m).max(1)),
            refs: (0..m).map(|_| am.alloc_u32(total_local.max(1))).collect(),
            edge: am.alloc_f64(total_iterations.max(1)),
            copies: am.alloc(plan.total_copies().max(1), 8),
        };
        NodePlanData {
            geometry: plan.geometry,
            plan,
            flat,
            giters,
            elems,
            phase_off,
            regions,
        }
    }
}

/// State of one node (the "procedure frame" of the phased program):
/// the shared plan data plus this execute's mutable buffers.
///
/// All per-element data is stored *element-major interleaved* (one
/// struct of `num_arrays` / `num_read_arrays` doubles per element) —
/// the layout the cache model has always charged for. A kernel
/// iteration touches one cache line per referenced element instead of
/// one per component, and every portion / broadcast segment is a single
/// contiguous slice, so message assembly is one `memcpy`.
pub struct PhasedNode<K> {
    proc: usize,
    sweeps: usize,
    kernel: Arc<K>,
    data: Arc<NodePlanData>,
    /// Reduction arrays with buffer extension, interleaved:
    /// `(num_elements + buffer_len) * num_arrays` doubles. When
    /// `region` is set (native flat runs) this holds *only* the buffer
    /// extension — the element range lives in the shared region.
    x: Vec<f64>,
    /// Zero-copy portion handoff (native flat layout only): the element
    /// range of the reduction arrays, shared with every other node. See
    /// [`SharedX`] for the exclusivity and ordering argument. `None` on
    /// the simulator (which models the message payloads) and under the
    /// nested diagnostic layout.
    region: Option<Arc<SharedX>>,
    /// Zero-copy read refresh (native flat layout only): the
    /// sweep-parity shared read buffers — see [`SharedRead`]. `None`
    /// on the simulator and under the nested layout, which replicate
    /// `read` per node and ship broadcast payloads.
    shared_read: Option<Arc<SharedRead>>,
    /// Replicated read arrays, interleaved: `num_elements *
    /// num_read_arrays` doubles (empty when `shared_read` is set).
    read: Vec<f64>,
    /// Reduction-group width / read-group width (cached off the kernel).
    r_arrays: usize,
    n_read: usize,
    /// Run the flattened fast-path loops (see [`StrategyConfig::layout`]).
    flat: bool,
    /// Resolved vector mode for this execute (see [`SimdMode`]); the
    /// flat loops dispatch to the chunked paths in [`crate::vector`]
    /// when it is not `Scalar` and the kernel shape is supported.
    simd: SimdMode,
    /// Scratch for kernel contributions.
    out: Vec<f64>,
    /// Recycled portion-payload buffers: boxes received from the ring
    /// predecessor are reused for our own forwards, so the steady state
    /// allocates nothing on the message path.
    pool: Vec<Box<[f64]>>,
    /// Measured per-phase loop cost, replayed after the metering sweep
    /// (and seeded from the [`Workspace`] cost cache under plan reuse).
    phase_cost: Vec<Option<u64>>,
    stream: StreamModel,
    /// Modeled per-iteration / per-copy overhead of the generated phased
    /// loop code (0 on the native backend).
    iter_overhead: u64,
    copy_overhead: u64,
    /// Own post-sweep read updates, staged until the next sweep starts so
    /// that all of a sweep's iterations see sweep-start read values (the
    /// sequential semantics): `(portion, interleaved segment)`. The
    /// segment is the same shared buffer the broadcast sends, so staging
    /// costs a refcount, not a copy.
    staged: Vec<(usize, Arc<[f64]>)>,
    /// Final portions collected during the last sweep:
    /// `(portion, x segment, read segment)`, interleaved.
    results: Vec<FinalPortion>,
}

/// One node's final values for one portion: `(portion, interleaved x
/// segment, interleaved read segment)`.
type FinalPortion = (usize, Vec<f64>, Vec<f64>);

/// The reduction arrays of a native flat-layout run, shared by every
/// node: the ring rotation transfers portion *ownership* as a bare
/// sync and the portion's doubles never travel. Sound because the
/// phased plan gives each phase exclusive write access to exactly one
/// portion range (scatters land in the owned portion or the node's
/// private buffer extension; copy-folds target the owned portion), and
/// the sync chain that enables a phase fiber — lane push (Release) →
/// sync-counter RMW (AcqRel) → Ready push (Release) → lane pop
/// (Acquire) — carries a happens-before edge from the previous owner's
/// writes to the next owner's reads (see the ordering argument at
/// `drain_lanes` in the native backend).
struct SharedX {
    data: UnsafeCell<Box<[f64]>>,
    len: usize,
}

// SAFETY: access is partitioned by portion ownership as documented on
// the type; the UnsafeCell is never touched outside owned ranges.
unsafe impl Send for SharedX {}
unsafe impl Sync for SharedX {}

impl SharedX {
    fn new(len: usize) -> Self {
        SharedX {
            data: UnsafeCell::new(vec![0.0f64; len].into_boxed_slice()),
            len,
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    /// # Safety
    /// The caller must only dereference offsets inside portion ranges
    /// it currently owns under the ring protocol (or its own copy-fold
    /// destinations, which lie in the owned portion).
    unsafe fn ptr(&self) -> *mut f64 {
        (*self.data.get()).as_mut_ptr()
    }

    /// # Safety
    /// `range` must lie inside a portion the caller currently owns; the
    /// returned borrow must not outlive that ownership.
    #[allow(clippy::mut_from_ref)]
    unsafe fn slice_mut(&self, range: Range<usize>) -> &mut [f64] {
        debug_assert!(range.end <= self.len);
        std::slice::from_raw_parts_mut(self.ptr().add(range.start), range.len())
    }
}

/// The replicated read arrays of a zero-copy native run, shared by
/// every node as a sweep-parity ping-pong pair: during sweep `t` all
/// nodes read `bufs[t & 1]`; the final owner of each portion writes
/// that portion's segment of `bufs[(t + 1) & 1]` from its post-sweep
/// update, and the broadcast degenerates to bare syncs.
///
/// Soundness of the parity reuse: the first write into parity
/// `(t + 1) & 1` happens at some node's phase `(t, kp-k)` — enabling
/// that fiber required its portion to travel the whole ring, i.e.
/// every node executed the phase `(t, kp-k-j·k) ≥ (t, 0)` where it
/// held the portion, and executing `(t, 0)` means that node's last
/// read of the overwritten parity (its sweep `t-1` loops) is already
/// ordered before the write by the portion/phase sync chain (each hop
/// a Release push / Acquire pop pair). Readers of the freshly written
/// parity start at `(t+1, 0)`, which the `kp-k` broadcast syncs
/// order after every writer.
struct SharedRead {
    bufs: [UnsafeCell<Box<[f64]>>; 2],
    len: usize,
}

// SAFETY: segment writes are exclusive per the portion-ownership
// argument above; reads and writes of the same location are separated
// by a full sweep of sync edges.
unsafe impl Send for SharedRead {}
unsafe impl Sync for SharedRead {}

impl SharedRead {
    /// `init` seeds the parity-0 buffer (sweep 0 reads it). The
    /// parity-1 buffer is only allocated when the kernel updates read
    /// state (otherwise parity 0 serves every sweep read-only).
    fn new(init: &[f64], updates_read: bool) -> Self {
        let other = if updates_read {
            vec![0.0f64; init.len()]
        } else {
            Vec::new()
        };
        SharedRead {
            bufs: [
                UnsafeCell::new(init.to_vec().into_boxed_slice()),
                UnsafeCell::new(other.into_boxed_slice()),
            ],
            len: init.len(),
        }
    }

    /// The buffer every node reads during sweep `t`.
    ///
    /// # Safety
    /// Caller must be a sweep-`t` fiber (reads are then ordered
    /// against the parity's writers by the sync chain, see the type
    /// docs). `updates_read` must match the kernel.
    unsafe fn read_for(&self, t: usize, updates_read: bool) -> &[f64] {
        let i = if updates_read { t & 1 } else { 0 };
        &*self.bufs[i].get()
    }

    /// The segment the final owner of a portion writes during sweep
    /// `t` (the other parity).
    ///
    /// # Safety
    /// Caller must currently own the portion `range` belongs to at its
    /// last visit of sweep `t`; each portion has exactly one such
    /// fiber per sweep, so the writes are exclusive.
    #[allow(clippy::mut_from_ref)]
    unsafe fn write_for(&self, t: usize) -> &mut [f64] {
        let i = (t + 1) & 1;
        let buf: &mut [f64] = &mut *self.bufs[i].get();
        debug_assert_eq!(buf.len(), self.len);
        buf
    }
}

/// Most pooled payload buffers a node retains (portion sizes take at
/// most two distinct values, so a handful is plenty).
const MAX_NODE_POOL: usize = 32;

/// What [`PreparedPhased::finish`] assembles from the per-node portions:
/// `(values, read, phase_iter_counts)`.
type Assembled = (Vec<Vec<f64>>, Vec<Vec<f64>>, Vec<Vec<usize>>);

fn slot_of(t: usize, p: usize, kp: usize) -> SlotId {
    (t * kp + p) as SlotId
}

impl<K: EdgeKernel> PhasedNode<K> {
    /// The body of phase fiber `(t, p)`.
    fn run_phase<C: FiberCtx<Self>>(s: &mut Self, t: usize, p: usize, ctx: &mut C) {
        let g = s.data.geometry;
        let kp = g.num_phases();
        let k = g.k();
        let portion = g.portion_owned_by(s.proc, p);
        let range = g.portion_range(portion);
        let abs = t * kp + p;
        let first_visit = p < k;
        let last_visit = p >= kp - k;
        let r_arrays = s.r_arrays;
        let xr = range.start * r_arrays..range.end * r_arrays;
        let tracing = ctx.trace_enabled();
        if tracing {
            ctx.trace(TraceKind::PhaseEnter {
                sweep: t as u32,
                phase: p as u32,
            });
            ctx.trace(TraceKind::CopyEnter {
                sweep: t as u32,
                phase: p as u32,
            });
        }

        // --- portion arrival / initialization ---------------------------
        if first_visit {
            // Reduction identity: zero the freshly owned portion.
            match &s.region {
                // SAFETY: this fiber owns `portion` for the phase.
                Some(reg) => unsafe { reg.slice_mut(xr.clone()) }.fill(0.0),
                None => s.x[xr.clone()].fill(0.0),
            }
            if ctx.is_sim() && !range.is_empty() {
                ctx.charge(s.stream.stream((range.len() * r_arrays) as u64, 8));
            }
        } else if !range.is_empty() && s.region.is_none() {
            let payload = ctx
                .recv(mailbox_key(TAG_PORTION, abs as u32))
                .expect("portion payload must have arrived");
            let vals = payload.expect_f64s();
            debug_assert_eq!(vals.len(), range.len() * r_arrays);
            // The SU deposits the payload directly into the portion's
            // memory (split-phase block move); the EU pays only the
            // first-touch misses, which the metered loops charge. The
            // interleaved wire format makes this one contiguous copy.
            s.x[xr.clone()].copy_from_slice(vals);
            // Recycle the payload buffer for our own forwards.
            if let Value::F64s(b) = payload {
                if s.pool.len() < MAX_NODE_POOL {
                    s.pool.push(b);
                }
            }
        }

        // --- read-array refresh at sweep start --------------------------
        // Under shared read buffers (native zero-copy path) there is
        // nothing to copy: the broadcast syncs that enabled this fiber
        // already order the other-parity writes, and this sweep's loops
        // read that parity directly.
        if p == 0 && t > 0 && s.kernel.updates_read_state() && s.shared_read.is_none() {
            // Own staged updates from the previous sweep's post-sweep.
            let staged = std::mem::take(&mut s.staged);
            for (pi, seg) in staged {
                let seg_range = g.portion_range(pi);
                if seg_range.is_empty() {
                    continue;
                }
                s.read[seg_range.start * s.n_read..seg_range.end * s.n_read].copy_from_slice(&seg);
            }
            // Remote segments from the other nodes' final owners.
            for pi in 0..kp {
                let owner = g
                    .owner_at(pi, g.last_visit_phase(pi))
                    .expect("last visit owner");
                if owner == s.proc {
                    continue; // applied from the staging buffer above
                }
                let key = mailbox_key(TAG_BCAST, ((t - 1) * kp + pi) as u32);
                let seg_range = g.portion_range(pi);
                if seg_range.is_empty() {
                    // Empty segments still arrive (zero-length) to keep the
                    // sync count uniform.
                    let _ = ctx.recv(key);
                    continue;
                }
                let payload = ctx.recv(key).expect("broadcast segment must have arrived");
                let vals = payload.expect_f64s();
                debug_assert_eq!(vals.len(), seg_range.len() * s.n_read);
                // SU-deposited, like portion payloads: no EU copy charge.
                s.read[seg_range.start * s.n_read..seg_range.end * s.n_read].copy_from_slice(vals);
            }
        }
        if tracing {
            ctx.trace(TraceKind::CopyExit {
                sweep: t as u32,
                phase: p as u32,
            });
        }

        // --- the two loops, metered once per phase ----------------------
        if ctx.is_sim() {
            match s.phase_cost[p] {
                Some(c) => {
                    s.exec_loops(t, p, &mut NullMeter);
                    ctx.charge(c);
                }
                None => {
                    let before = ctx.charged();
                    let mut meter = earth_model::program::CtxMeter::<Self, C>::new(ctx);
                    // Split borrow: meter wraps ctx; loops touch the rest.
                    s.exec_loops_metered(p, &mut meter);
                    let cost = ctx.charged() - before;
                    // Sweep 0 runs on a cold cache; re-measure on sweep 1
                    // and replay that steady-state cost thereafter.
                    if t > 0 || s.sweeps == 1 {
                        s.phase_cost[p] = Some(cost);
                    }
                }
            }
        } else {
            s.exec_loops(t, p, &mut NullMeter);
        }
        // Generated-code overhead of the phased loops (see SimConfig).
        if ctx.is_sim() {
            ctx.charge(
                s.data.giters[p].len() as u64 * s.iter_overhead
                    + s.data.plan.phases[p].copies.len() as u64 * s.copy_overhead,
            );
        }

        // --- post-sweep on final values ----------------------------------
        if last_visit && s.shared_read.is_some() {
            // Zero-copy path: the post-sweep update writes the portion's
            // segment of the *other* parity buffer directly (this sweep's
            // loops keep reading the current parity, preserving the
            // sequential sweep-start semantics), and the broadcast
            // degenerates to bare syncs.
            let rr = range.start * s.n_read..range.end * s.n_read;
            let sr = s.shared_read.clone().expect("checked above");
            let updates = s.kernel.updates_read_state();
            if updates && !range.is_empty() {
                let reg = s
                    .region
                    .as_ref()
                    .expect("shared read implies shared region");
                // SAFETY: this fiber is the portion's unique final-visit
                // owner for sweep `t` (see [`SharedRead`] / [`SharedX`]).
                unsafe {
                    let cur = sr.read_for(t, true);
                    let next = sr.write_for(t);
                    next[rr.clone()].copy_from_slice(&cur[rr.clone()]);
                    let xs = reg.slice_mut(xr.clone());
                    let changed = s.kernel.post_sweep(next, range.clone(), xs);
                    debug_assert_eq!(changed, updates);
                }
            }
            if updates && t + 1 < s.sweeps {
                let dst_slot = slot_of(t + 1, 0, kp);
                for d in 0..g.num_procs() {
                    if d != s.proc {
                        ctx.sync(d, dst_slot);
                    }
                }
            }
            if t + 1 == s.sweeps {
                let reg = s
                    .region
                    .as_ref()
                    .expect("shared read implies shared region");
                // SAFETY: last visit of the last sweep — ownership never
                // rotates again.
                let xs = unsafe { reg.slice_mut(xr.clone()) }.to_vec();
                let rs = if range.is_empty() {
                    Vec::new()
                } else if updates {
                    unsafe { &sr.write_for(t)[rr] }.to_vec()
                } else {
                    unsafe { &sr.read_for(t, false)[rr] }.to_vec()
                };
                s.results.push((portion, xs, rs));
            }
        } else if last_visit {
            // Run the kernel's node-level update, but *stage* its writes
            // to the read arrays: the rest of this sweep (later phases on
            // this node) must keep seeing sweep-start read values, exactly
            // as a sequential time step would.
            let rr = range.start * s.n_read..range.end * s.n_read;
            let mut updated: Option<Arc<[f64]>> = None;
            if !range.is_empty() {
                let snapshot: Vec<f64> = s.read[rr.clone()].to_vec();
                let changed = s
                    .kernel
                    .post_sweep(&mut s.read, range.clone(), &s.x[xr.clone()]);
                if ctx.is_sim() {
                    ctx.flops(range.len() as u64 * s.kernel.post_flops_per_elem());
                }
                debug_assert_eq!(changed, s.kernel.updates_read_state());
                if changed {
                    // One copy out into the shared segment; the broadcast,
                    // the staging buffer, and the final results all alias
                    // this one allocation.
                    updated = Some(s.read[rr.clone()].into());
                    s.read[rr.clone()].copy_from_slice(&snapshot);
                }
            }
            // Broadcast the refreshed segment for the next sweep and
            // stage our own copy. The segment is built once and shared
            // (`Arc`) across all `P − 1` destinations — no per-dest copy.
            if s.kernel.updates_read_state() && t + 1 < s.sweeps {
                let seg: Arc<[f64]> = updated.clone().unwrap_or_else(|| Vec::new().into());
                // Keyed by (sweep, portion): the receiver's sweep-start
                // fiber iterates portions, not phases.
                let key = mailbox_key(TAG_BCAST, (t * kp + portion) as u32);
                let dst_slot = slot_of(t + 1, 0, kp);
                for d in 0..g.num_procs() {
                    if d != s.proc {
                        ctx.data_sync(d, key, Value::F64sShared(Arc::clone(&seg)), dst_slot);
                    }
                }
                s.staged.push((portion, seg));
            }
            // Keep final values after the last sweep. The read segment
            // is the *updated* one: the last time step's node update has
            // happened, matching the sequential executor.
            if t + 1 == s.sweeps {
                let xs = s.x[xr.clone()].to_vec();
                let rs = if s.kernel.updates_read_state() {
                    updated.map(|u| u.to_vec()).unwrap_or_default()
                } else {
                    s.read[rr].to_vec()
                };
                s.results.push((portion, xs, rs));
            }
        }

        // --- forward the portion around the ring -------------------------
        let next_abs = abs + k;
        if next_abs < s.sweeps * kp {
            let dest = g.next_owner(s.proc);
            let dst_slot = next_abs as SlotId;
            if tracing {
                ctx.trace(TraceKind::PortionRotate {
                    portion: portion as u32,
                    to_node: dest as u32,
                });
            }
            if last_visit || range.is_empty() || s.region.is_some() {
                // A bare sync suffices when the next visit starts a new
                // sweep (the receiver zeroes), the portion is empty, or
                // the run shares one region allocation (zero-copy
                // handoff: ownership rotates, the doubles never travel —
                // the sync chain carries the happens-before edge, see
                // [`SharedX`]).
                ctx.sync(dest, dst_slot);
            } else {
                // One contiguous copy into a recycled buffer (portion
                // sizes take at most two distinct values, so a pooled box
                // of exactly the right length is almost always available).
                let need = range.len() * r_arrays;
                let mut payload = match s.pool.iter().position(|b| b.len() == need) {
                    Some(i) => s.pool.swap_remove(i),
                    None => vec![0.0f64; need].into_boxed_slice(),
                };
                payload.copy_from_slice(&s.x[xr]);
                ctx.data_sync(
                    dest,
                    mailbox_key(TAG_PORTION, next_abs as u32),
                    Value::F64s(payload),
                    dst_slot,
                );
            }
        }

        // --- enable the next phase on this node --------------------------
        if abs + 1 < s.sweeps * kp {
            ctx.sync(s.proc, (abs + 1) as SlotId);
        }
        if tracing {
            ctx.trace(TraceKind::PhaseExit {
                sweep: t as u32,
                phase: p as u32,
            });
        }
    }

    /// Loop 1 + loop 2 without metering: the native / replay hot path.
    /// Under the default flat layout this streams the inspector's
    /// flattened iteration schedule; the nested layout replays the same
    /// float operations from the per-phase plan structures.
    fn exec_loops(&mut self, t: usize, p: usize, _meter: &mut NullMeter) {
        let d = &self.data;
        let use_vec = self.simd != SimdMode::Scalar
            && vector::supported(self.kernel.num_refs(), self.r_arrays);
        let intr = self.simd == SimdMode::Intrinsics;
        if let Some(reg) = &self.region {
            let read: &[f64] = match &self.shared_read {
                // SAFETY: called from a sweep-`t` fiber; see
                // [`SharedRead::read_for`].
                Some(sr) => unsafe { sr.read_for(t, self.kernel.updates_read_state()) },
                None => &self.read,
            };
            if use_vec {
                // SAFETY: identical region-ownership argument as the
                // scalar path below (`loops_flat_region_r`): every
                // dereferenced region offset lies inside the portion
                // this phase owns, and `x` is the node's private
                // buffer extension.
                unsafe {
                    vector::loops_flat_region_vec(
                        &*self.kernel,
                        read,
                        reg.ptr(),
                        reg.len(),
                        &mut self.x,
                        self.r_arrays,
                        &d.giters[p],
                        &d.elems[p],
                        d.flat.phase_refs(p),
                        d.flat.phase_copies(p),
                        intr,
                    );
                }
            } else {
                loops_flat_region(
                    &*self.kernel,
                    read,
                    reg,
                    &mut self.x,
                    self.r_arrays,
                    &d.giters[p],
                    &d.elems[p],
                    d.flat.phase_refs(p),
                    d.flat.phase_copies(p),
                    &mut self.out,
                );
            }
        } else if self.flat {
            if use_vec {
                vector::loops_flat_vec(
                    &*self.kernel,
                    &self.read,
                    &mut self.x,
                    self.r_arrays,
                    &d.giters[p],
                    &d.elems[p],
                    d.flat.phase_refs(p),
                    d.flat.phase_copies(p),
                    intr,
                );
            } else {
                loops_flat(
                    &*self.kernel,
                    &self.read,
                    &mut self.x,
                    self.r_arrays,
                    &d.giters[p],
                    &d.elems[p],
                    d.flat.phase_refs(p),
                    d.flat.phase_copies(p),
                    &mut self.out,
                );
            }
        } else {
            loops(
                &*self.kernel,
                &self.read,
                &mut self.x,
                self.r_arrays,
                self.n_read,
                &d.giters[p],
                &d.elems[p],
                &d.plan.phases[p],
                &mut self.out,
                &d.regions,
                d.phase_off[p],
                &mut NullMeter,
            );
        }
    }

    /// Loop 1 + loop 2 with full cache metering. Always runs the nested
    /// plan walk so the meter sees the byte-identical access sequence
    /// regardless of the layout knob.
    fn exec_loops_metered<M: Meter>(&mut self, p: usize, meter: &mut M) {
        let d = &self.data;
        loops(
            &*self.kernel,
            &self.read,
            &mut self.x,
            self.r_arrays,
            self.n_read,
            &d.giters[p],
            &d.elems[p],
            &d.plan.phases[p],
            &mut self.out,
            &d.regions,
            d.phase_off[p],
            meter,
        );
    }
}

/// The inner loops, written once and monomorphized over the meter.
#[allow(clippy::too_many_arguments)]
fn loops<K: EdgeKernel, M: Meter>(
    kernel: &K,
    read: &[f64],
    x: &mut [f64],
    r_arrays: usize,
    n_read: usize,
    giters: &[u32],
    elems: &[u32],
    phase: &lightinspector::PhasePlan,
    out: &mut [f64],
    regs: &Regions,
    phase_off: usize,
    meter: &mut M,
) {
    let m = phase.refs.len();
    let edge_reads = kernel.edge_reads_per_iter();
    let node_reads = kernel.node_reads_per_elem();
    let flops = kernel.flops_per_iter();

    // Loop 1: compute contributions and scatter them into the resident
    // portion or the buffer extension.
    for (j, &gi) in giters.iter().enumerate() {
        let pos = phase_off + j;
        meter.load(regs.giter.addr(pos));
        let e = &elems[j * m..(j + 1) * m];
        for (r, &el) in e.iter().enumerate() {
            meter.load(regs.elems.addr(pos * m + r));
            for w in 0..node_reads {
                meter.load(
                    regs.read
                        .addr(el as usize * n_read.max(1) + w % n_read.max(1)),
                );
            }
        }
        for w in 0..edge_reads {
            let _ = w;
            meter.load(regs.edge.addr(gi as usize));
        }
        out.fill(0.0);
        kernel.contrib(read, gi as usize, e, out);
        meter.flops(flops);
        for r in 0..m {
            let base = phase.refs[r][j] as usize * r_arrays;
            meter.load(regs.refs[r].addr(pos));
            for a in 0..r_arrays {
                x[base + a] += out[r * r_arrays + a];
                meter.load(regs.x.addr(base + a));
                meter.store(regs.x.addr(base + a));
                meter.flops(1);
            }
        }
    }

    // Loop 2: fold buffered contributions into the now-resident portion
    // and reset the buffer slots for the next sweep.
    for (ci, c) in phase.copies.iter().enumerate() {
        meter.load(regs.copies.addr(ci));
        let sb = c.src as usize * r_arrays;
        let db = c.dest as usize * r_arrays;
        for a in 0..r_arrays {
            let v = x[sb + a];
            x[db + a] += v;
            x[sb + a] = 0.0;
            meter.load(regs.x.addr(sb + a));
            meter.load(regs.x.addr(db + a));
            meter.store(regs.x.addr(db + a));
            meter.store(regs.x.addr(sb + a));
            meter.flops(1);
        }
    }
}

/// The unmetered fast path over the flattened schedule: references come
/// interleaved per iteration (`refs[j*m + r]`) so the inner loop streams
/// one contiguous array instead of hopping between `m` columns, and no
/// meter plumbing survives into the generated code. Performs exactly the
/// same float operations in exactly the same order as [`loops`], so the
/// results are bit-identical.
#[allow(clippy::too_many_arguments)]
fn loops_flat<K: EdgeKernel>(
    kernel: &K,
    read: &[f64],
    x: &mut [f64],
    r_arrays: usize,
    giters: &[u32],
    elems: &[u32],
    refs: &[u32],
    copies: &[lightinspector::CopyOp],
    out: &mut [f64],
) {
    // Monomorphize the per-element vector width for the common kernel
    // shapes (mvm: 1, moldyn: 3, euler: 4) so the scatter and copy inner
    // loops unroll; anything else takes the generic-width path.
    match r_arrays {
        1 => loops_flat_r::<K, 1>(kernel, read, x, giters, elems, refs, copies, out),
        2 => loops_flat_r::<K, 2>(kernel, read, x, giters, elems, refs, copies, out),
        3 => loops_flat_r::<K, 3>(kernel, read, x, giters, elems, refs, copies, out),
        4 => loops_flat_r::<K, 4>(kernel, read, x, giters, elems, refs, copies, out),
        _ => generic_loops_flat(kernel, read, x, r_arrays, giters, elems, refs, copies, out),
    }
}

#[allow(clippy::too_many_arguments)]
fn loops_flat_r<K: EdgeKernel, const R: usize>(
    kernel: &K,
    read: &[f64],
    x: &mut [f64],
    giters: &[u32],
    elems: &[u32],
    refs: &[u32],
    copies: &[lightinspector::CopyOp],
    out: &mut [f64],
) {
    let m = if giters.is_empty() {
        1
    } else {
        refs.len() / giters.len()
    };
    debug_assert_eq!(giters.len() * m, refs.len());
    debug_assert!(out.len() >= m * R);
    for (j, &gi) in giters.iter().enumerate() {
        let e = &elems[j * m..(j + 1) * m];
        out.fill(0.0);
        kernel.contrib(read, gi as usize, e, out);
        let rf = &refs[j * m..(j + 1) * m];
        for (r, &tgt) in rf.iter().enumerate() {
            let base = tgt as usize * R;
            debug_assert!(base + R <= x.len());
            // SAFETY: `tgt` is a local index the inspector produced and
            // bounded by the node's `x` extent (region plus buffer): the
            // spec's element indices are range-checked when the plan is
            // built (`InspectError::OutOfRange`) and the plan itself is
            // `verify_plan`-checked in debug builds. `r < m` and `out`
            // holds `m * R` slots.
            unsafe {
                for a in 0..R {
                    *x.get_unchecked_mut(base + a) += *out.get_unchecked(r * R + a);
                }
            }
        }
    }
    for c in copies {
        let sb = c.src as usize * R;
        let db = c.dest as usize * R;
        debug_assert!(sb + R <= x.len() && db + R <= x.len());
        // SAFETY: copy sources live in the buffer extension and copy
        // destinations in the resident region, both sized into `x` at
        // prepare time from the same verified plan as above.
        unsafe {
            for a in 0..R {
                let v = *x.get_unchecked(sb + a);
                *x.get_unchecked_mut(db + a) += v;
                *x.get_unchecked_mut(sb + a) = 0.0;
            }
        }
    }
}

/// [`loops_flat`] against the shared region of a zero-copy native run:
/// scatter targets below the region length land in the shared
/// allocation (the portion this phase owns), targets at or above it in
/// the node's private buffer extension, and every copy-op folds a
/// buffer slot into the region. Performs exactly the same float
/// operations in exactly the same order as [`loops`] / [`loops_flat`] —
/// only the storage differs — so the results stay bit-identical.
#[allow(clippy::too_many_arguments)]
fn loops_flat_region<K: EdgeKernel>(
    kernel: &K,
    read: &[f64],
    region: &SharedX,
    buf: &mut [f64],
    r_arrays: usize,
    giters: &[u32],
    elems: &[u32],
    refs: &[u32],
    copies: &[lightinspector::CopyOp],
    out: &mut [f64],
) {
    let m = if giters.is_empty() {
        1
    } else {
        refs.len() / giters.len()
    };
    // Fully const-specialized (refs-per-iter × arrays-per-element)
    // combinations for the common kernel shapes: the inner loops unroll
    // completely and the contribution buffer lives on the stack, so the
    // scatter reads come straight out of registers.
    macro_rules! mr {
        ($m:literal, $r:literal) => {
            loops_flat_region_mr::<K, $m, $r>(
                kernel, read, region, buf, giters, elems, refs, copies,
            )
        };
    }
    match (m, r_arrays) {
        (1, 1) => mr!(1, 1),
        (2, 1) => mr!(2, 1),
        (2, 2) => mr!(2, 2),
        (2, 3) => mr!(2, 3),
        (2, 4) => mr!(2, 4),
        (4, 1) => mr!(4, 1),
        (4, 2) => mr!(4, 2),
        (4, 3) => mr!(4, 3),
        (4, 4) => mr!(4, 4),
        _ => match r_arrays {
            1 => loops_flat_region_r::<K, 1>(
                kernel, read, region, buf, giters, elems, refs, copies, out,
            ),
            2 => loops_flat_region_r::<K, 2>(
                kernel, read, region, buf, giters, elems, refs, copies, out,
            ),
            3 => loops_flat_region_r::<K, 3>(
                kernel, read, region, buf, giters, elems, refs, copies, out,
            ),
            4 => loops_flat_region_r::<K, 4>(
                kernel, read, region, buf, giters, elems, refs, copies, out,
            ),
            _ => loops_flat_region_generic(
                kernel, read, region, buf, r_arrays, giters, elems, refs, copies, out,
            ),
        },
    }
}

/// Distance (in iterations) the flat loops prefetch ahead of the
/// current iteration. Far enough to cover an L2 miss at ~2 refs per
/// iteration, near enough that the lines are still resident when used.
pub(crate) const PREFETCH_AHEAD: usize = 8;

/// Best-effort prefetch of the cache line holding `ptr`. A pure
/// latency hint — no architectural effect, so float results are
/// untouched. `wrapping_add`-derived pointers are fine: the hint never
/// faults and we never dereference them here.
#[inline(always)]
pub(crate) fn prefetch(ptr: *const f64) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `_mm_prefetch` is a hint; it cannot fault or write.
    unsafe {
        std::arch::x86_64::_mm_prefetch(ptr as *const i8, std::arch::x86_64::_MM_HINT_T0);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = ptr;
}

#[allow(clippy::too_many_arguments)]
fn loops_flat_region_r<K: EdgeKernel, const R: usize>(
    kernel: &K,
    read: &[f64],
    region: &SharedX,
    buf: &mut [f64],
    giters: &[u32],
    elems: &[u32],
    refs: &[u32],
    copies: &[lightinspector::CopyOp],
    out: &mut [f64],
) {
    let split = region.len();
    // SAFETY: every region offset dereferenced below lies inside the
    // portion this phase owns (scatter refs `< n` target the resident
    // portion; copy dests are resident elements by construction — see
    // the inspector's PLACE pass), so the accesses are exclusive under
    // the ring protocol documented on [`SharedX`].
    let rp = unsafe { region.ptr() };
    let m = if giters.is_empty() {
        1
    } else {
        refs.len() / giters.len()
    };
    debug_assert_eq!(giters.len() * m, refs.len());
    debug_assert!(out.len() >= m * R);
    let n_read = kernel.num_read_arrays();
    let bp = buf.as_mut_ptr();
    // Branch-free select of a ref's scatter destination: the resident
    // portion (region) below `split`, the private buffer extension
    // above it. Both candidate pointers are computed with wrapping
    // arithmetic (never dereferenced when unselected), so the compiler
    // can lower the select to a cmov instead of an unpredictable
    // branch — the region/buffer mix within a phase is data-dependent.
    let target = |base: usize| -> *mut f64 {
        let pr = rp.wrapping_add(base);
        let pb = bp.wrapping_add(base.wrapping_sub(split));
        if base < split {
            pr
        } else {
            pb
        }
    };
    for (j, &gi) in giters.iter().enumerate() {
        // Hide the random-access latency of a future iteration's
        // position reads and scatter targets while this one computes.
        let pj = j + PREFETCH_AHEAD;
        if pj < giters.len() {
            for r in 0..m {
                let el = elems[pj * m + r] as usize;
                if n_read > 0 {
                    prefetch(read.as_ptr().wrapping_add(el * n_read));
                }
                prefetch(target(refs[pj * m + r] as usize * R));
            }
        }
        let e = &elems[j * m..(j + 1) * m];
        out.fill(0.0);
        kernel.contrib(read, gi as usize, e, out);
        let rf = &refs[j * m..(j + 1) * m];
        for (r, &tgt) in rf.iter().enumerate() {
            let base = tgt as usize * R;
            debug_assert!(base < split || base - split + R <= buf.len());
            // SAFETY: `tgt` is inspector-produced and plan-verified:
            // `< n` means the resident portion (region), otherwise a
            // buffer slot sized into `buf` at prepare time, so the
            // selected pointer is valid for `R` doubles.
            unsafe {
                let p = target(base);
                for a in 0..R {
                    *p.add(a) += *out.get_unchecked(r * R + a);
                }
            }
        }
    }
    fold_copies_region::<R>(rp, split, buf, copies);
}

/// The copy loop shared by the region-mode flat loops: fold every
/// buffered contribution into its resident element and reset the slot
/// for the next sweep. Same float operations, same order as the
/// in-place copy walk in [`loops`].
fn fold_copies_region<const R: usize>(
    rp: *mut f64,
    split: usize,
    buf: &mut [f64],
    copies: &[lightinspector::CopyOp],
) {
    for (i, c) in copies.iter().enumerate() {
        if let Some(nc) = copies.get(i + PREFETCH_AHEAD) {
            prefetch(rp.wrapping_add(nc.dest as usize * R) as *const f64);
        }
        let sb = c.src as usize * R;
        let db = c.dest as usize * R;
        debug_assert!(sb >= split && sb - split + R <= buf.len());
        debug_assert!(db + R <= split);
        // SAFETY: copy sources are buffer slots (`src >= n` by the
        // inspector's slot allocation) and destinations resident
        // elements of the owned portion.
        unsafe {
            let sb = sb - split;
            for a in 0..R {
                let v = *buf.get_unchecked(sb + a);
                *rp.add(db + a) += v;
                *buf.get_unchecked_mut(sb + a) = 0.0;
            }
        }
    }
}

/// Fully unrolled variant of [`loops_flat_region_r`] for kernels with
/// exactly `M` indirection refs per iteration. The contribution buffer
/// is a stack array the compiler can promote to registers once the
/// kernel inlines, and the per-iteration slicing uses plan-verified
/// unchecked indexing. Float operations and their order are identical
/// to [`loops`] / [`loops_flat`] — results stay bit-identical.
#[allow(clippy::too_many_arguments)]
fn loops_flat_region_mr<K: EdgeKernel, const M: usize, const R: usize>(
    kernel: &K,
    read: &[f64],
    region: &SharedX,
    buf: &mut [f64],
    giters: &[u32],
    elems: &[u32],
    refs: &[u32],
    copies: &[lightinspector::CopyOp],
) {
    const { assert!(M * R <= 16) };
    let split = region.len();
    // SAFETY: region offsets stay inside the phase's owned portion —
    // see `loops_flat_region_r`.
    let rp = unsafe { region.ptr() };
    assert_eq!(giters.len() * M, refs.len());
    assert_eq!(elems.len(), refs.len());
    let n_read = kernel.num_read_arrays();
    let bp = buf.as_mut_ptr();
    // Branch-free region/buffer select — see `loops_flat_region_r`.
    let target = |base: usize| -> *mut f64 {
        let pr = rp.wrapping_add(base);
        let pb = bp.wrapping_add(base.wrapping_sub(split));
        if base < split {
            pr
        } else {
            pb
        }
    };
    let mut outb = [0.0f64; 16];
    for (j, &gi) in giters.iter().enumerate() {
        let pj = j + PREFETCH_AHEAD;
        if pj < giters.len() {
            for r in 0..M {
                // SAFETY: `pj < giters.len()` and the length equalities
                // asserted above bound `pj * M + r`.
                let (el, tgt) = unsafe {
                    (
                        *elems.get_unchecked(pj * M + r) as usize,
                        *refs.get_unchecked(pj * M + r) as usize,
                    )
                };
                if n_read > 0 {
                    prefetch(read.as_ptr().wrapping_add(el * n_read));
                }
                prefetch(target(tgt * R));
            }
        }
        let out = &mut outb[..M * R];
        out.fill(0.0);
        // SAFETY: the length equalities asserted above bound the slice.
        let e = unsafe { elems.get_unchecked(j * M..(j + 1) * M) };
        kernel.contrib(read, gi as usize, e, out);
        for r in 0..M {
            // SAFETY: index bounded as above; the selected pointer is
            // valid for `R` doubles (plan-verified ref targets).
            unsafe {
                let base = *refs.get_unchecked(j * M + r) as usize * R;
                debug_assert!(base < split || base - split + R <= buf.len());
                let p = target(base);
                for a in 0..R {
                    *p.add(a) += *out.get_unchecked(r * R + a);
                }
            }
        }
    }
    fold_copies_region::<R>(rp, split, buf, copies);
}

/// Checked-arithmetic fallback of [`loops_flat_region_r`] for kernels
/// with more than four reduction arrays per element.
#[allow(clippy::too_many_arguments)]
fn loops_flat_region_generic<K: EdgeKernel>(
    kernel: &K,
    read: &[f64],
    region: &SharedX,
    buf: &mut [f64],
    r_arrays: usize,
    giters: &[u32],
    elems: &[u32],
    refs: &[u32],
    copies: &[lightinspector::CopyOp],
    out: &mut [f64],
) {
    let split = region.len();
    // SAFETY: as in `loops_flat_region_r` — region offsets stay inside
    // the phase's owned portion.
    let rp = unsafe { region.ptr() };
    let m = if giters.is_empty() {
        1
    } else {
        refs.len() / giters.len()
    };
    for (j, &gi) in giters.iter().enumerate() {
        let e = &elems[j * m..(j + 1) * m];
        out.fill(0.0);
        kernel.contrib(read, gi as usize, e, out);
        let rf = &refs[j * m..(j + 1) * m];
        for (r, &tgt) in rf.iter().enumerate() {
            let base = tgt as usize * r_arrays;
            if base < split {
                // SAFETY: resident-portion scatter, exclusive per the
                // ring protocol.
                unsafe {
                    for a in 0..r_arrays {
                        *rp.add(base + a) += out[r * r_arrays + a];
                    }
                }
            } else {
                let bb = base - split;
                for a in 0..r_arrays {
                    buf[bb + a] += out[r * r_arrays + a];
                }
            }
        }
    }
    for c in copies {
        let sb = c.src as usize * r_arrays - split;
        let db = c.dest as usize * r_arrays;
        for a in 0..r_arrays {
            let v = buf[sb + a];
            // SAFETY: copy dest is a resident element of the owned
            // portion.
            unsafe {
                *rp.add(db + a) += v;
            }
            buf[sb + a] = 0.0;
        }
    }
}

/// Checked, dynamic-width fallback of [`loops_flat_r`] for kernels with
/// more than four reduction arrays per element.
#[allow(clippy::too_many_arguments)]
fn generic_loops_flat<K: EdgeKernel>(
    kernel: &K,
    read: &[f64],
    x: &mut [f64],
    r_arrays: usize,
    giters: &[u32],
    elems: &[u32],
    refs: &[u32],
    copies: &[lightinspector::CopyOp],
    out: &mut [f64],
) {
    let m = if giters.is_empty() {
        1
    } else {
        refs.len() / giters.len()
    };
    for (j, &gi) in giters.iter().enumerate() {
        let e = &elems[j * m..(j + 1) * m];
        out.fill(0.0);
        kernel.contrib(read, gi as usize, e, out);
        let rf = &refs[j * m..(j + 1) * m];
        for (r, &tgt) in rf.iter().enumerate() {
            let base = tgt as usize * r_arrays;
            for a in 0..r_arrays {
                x[base + a] += out[r * r_arrays + a];
            }
        }
    }
    for c in copies {
        let sb = c.src as usize * r_arrays;
        let db = c.dest as usize * r_arrays;
        for a in 0..r_arrays {
            let v = x[sb + a];
            x[db + a] += v;
            x[sb + a] = 0.0;
        }
    }
}

/// Compute the sync count of phase fiber `(t, p)`.
fn sync_count(t: usize, p: usize, k: usize, kp: usize, updates_read: bool) -> u32 {
    let mut c = 0u32;
    if !(t == 0 && p == 0) {
        c += 1; // chain from the previous phase on this node
    }
    if !(t == 0 && p < k) {
        c += 1; // portion arrival (data or bare sync)
    }
    if p == 0 && t > 0 && updates_read {
        c += (kp - k) as u32; // broadcast segments from the previous sweep
    }
    c
}

/// The program template, specialized to whichever backend the engine
/// that prepared the run drives.
enum PhasedTemplate<K> {
    Sim(ProgramTemplate<PhasedNode<K>, SimCtx<PhasedNode<K>>>),
    Native(ProgramTemplate<PhasedNode<K>, NativeCtx<PhasedNode<K>>>),
}

fn build_template<K: EdgeKernel, C: FiberCtx<PhasedNode<K>> + 'static>(
    strat: &StrategyConfig,
    updates_read: bool,
) -> ProgramTemplate<PhasedNode<K>, C> {
    let kp = strat.phases_per_sweep();
    let k = strat.k;
    let mut tmpl = ProgramTemplate::new();
    for _proc in 0..strat.procs {
        let id = tmpl.add_node();
        for t in 0..strat.sweeps {
            for p in 0..kp {
                let count = sync_count(t, p, k, kp, updates_read);
                tmpl.node_mut(id).add_fiber(FiberTemplate::new(
                    "phase",
                    count,
                    move |s: &mut PhasedNode<K>, ctx: &mut C| {
                        PhasedNode::run_phase(s, t, p, ctx);
                    },
                ));
            }
        }
    }
    tmpl
}

/// A fully prepared phased run: validated spec, per-node inspector
/// plans (held incrementally so adaptive meshes re-prepare in `O(m)` per
/// changed iteration), remapped indirection, and the EARTH program
/// template. Execute it any number of times; repeated executes skip
/// inspection, remapping, program construction, and (on the simulator)
/// metering.
pub struct PreparedPhased<K> {
    kernel: Arc<K>,
    num_elements: usize,
    strat: StrategyConfig,
    /// Tuning captured at prepare time (layout/tile shaped the plan;
    /// simd/host_threads are the defaults for entry points that bypass
    /// the engine's [`ExecutionConfig`], e.g.
    /// [`Self::execute_recovering_with`]).
    tuning: Tuning,
    /// Resolved phase-local tile span in elements (`None` = untiled);
    /// see [`TileChoice`] and [`tile_plan`].
    tile_span: Option<usize>,
    /// Whether the flat fast path is active (both the legacy
    /// [`StrategyConfig::layout`] and [`Tuning::layout`] request Flat —
    /// nested wins if either side asks for the diagnostic layout).
    layout_flat: bool,
    /// Current global indirection arrays (kept in sync with the per-node
    /// inspectors by [`Self::apply_updates`]).
    indirection: Vec<Vec<u32>>,
    /// Global iteration → (proc, local index) under the distribution.
    iter_loc: Vec<(u32, u32)>,
    /// Per-proc incremental inspectors (own the local indirection).
    inspectors: Vec<IncrementalInspector>,
    /// Per-proc local→global iteration maps.
    local_iters: Vec<Vec<u32>>,
    /// Frozen per-node plan snapshots handed to node states.
    node_data: Vec<Arc<NodePlanData>>,
    /// Nodes whose snapshot is stale after incremental updates.
    dirty: Vec<bool>,
    /// The kernel's initial read state (element-major interleaved),
    /// computed once and copied into pooled buffers on each execute.
    read_init: Vec<f64>,
    mem_cfg: memsim::MemConfig,
    overheads: (u64, u64),
    /// Trace-sink selection captured at prepare time (used by entry
    /// points that bypass the engine, e.g.
    /// [`Self::execute_recovering_with`]).
    trace_cfg: TraceConfig,
    /// LightInspector stage-completion events captured during prepare
    /// (timestamp 0, node = processor), replayed into the sink at the
    /// start of every traced execute so the timeline shows inspection.
    inspector_events: Vec<TraceEvent>,
    template: PhasedTemplate<K>,
    token: PlanToken,
    /// [`PhasedSpec::structure_hash`] of the originating (spec,
    /// strategy) pair, fixed at prepare; combined with the mutation
    /// version to form [`Self::cache_key`].
    structure_hash: u64,
    executions: u64,
}

impl<K> std::fmt::Debug for PreparedPhased<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedPhased")
            .field("num_elements", &self.num_elements)
            .field("strat", &self.strat)
            .field("token", &self.token)
            .field("executions", &self.executions)
            .finish_non_exhaustive()
    }
}

impl<K: EdgeKernel> PreparedPhased<K> {
    fn new(
        spec: &PhasedSpec<K>,
        strat: &StrategyConfig,
        cfg: &ExecutionConfig,
    ) -> Result<Self, EngineError> {
        validate_phased_spec(spec)?;
        // n < k·P is legal: trailing portions are empty and their phases
        // degenerate to bare synchronization (PhaseGeometry handles this).
        let geometry = PhaseGeometry::try_new(strat.procs, strat.k, spec.num_elements)?;
        let m = spec.kernel.num_refs();
        let total_iterations = spec.num_iterations();
        let tile_span = resolve_tile_span(&cfg.tuning, cfg, &geometry, &*spec.kernel);
        let owned = distribute(total_iterations, strat.procs, strat.distribution);

        let mut iter_loc = vec![(0u32, 0u32); total_iterations];
        for (proc, iters) in owned.iter().enumerate() {
            for (li, &gi) in iters.iter().enumerate() {
                iter_loc[gi as usize] = (proc as u32, li as u32);
            }
        }

        // One inspector pass per processor — each pass only touches its
        // own local indirection, so the passes are embarrassingly
        // parallel. On multi-core hosts they run on scoped threads; the
        // results are collected in processor order, so the plans, trace
        // events, and everything derived from them are deterministic and
        // identical to the serial construction.
        let trace_on = cfg.trace.enabled();
        type ProcPrep = Result<(IncrementalInspector, NodePlanData, Vec<TraceEvent>), EngineError>;
        let build_one = |proc: usize, local_iters: &Vec<u32>| -> ProcPrep {
            let local_ind: Vec<Vec<u32>> = (0..m)
                .map(|r| {
                    local_iters
                        .iter()
                        .map(|&i| spec.indirection[r][i as usize])
                        .collect()
                })
                .collect();
            let mut events = Vec::new();
            let insp =
                IncrementalInspector::try_new_observed(geometry, proc, local_ind, &mut |stage| {
                    if trace_on {
                        events.push(TraceEvent::new(
                            0,
                            proc as u32,
                            TraceKind::InspectorStage { stage },
                        ));
                    }
                })?;
            debug_assert!({
                let refs: Vec<&[u32]> = insp.indirection().iter().map(|v| v.as_slice()).collect();
                lightinspector::verify_plan(insp.plan(), &refs).is_ok()
            });
            let data = NodePlanData::from_inspector(
                &insp,
                local_iters,
                spec.num_elements,
                total_iterations,
                &*spec.kernel,
                tile_span,
            );
            Ok((insp, data, events))
        };
        let parallel = strat.procs > 1
            && std::thread::available_parallelism()
                .map(|n| n.get() > 1)
                .unwrap_or(false);
        let prepped: Vec<ProcPrep> = if parallel {
            std::thread::scope(|scope| {
                let handles: Vec<_> = owned
                    .iter()
                    .enumerate()
                    .take(strat.procs)
                    .map(|(proc, local_iters)| scope.spawn(move || build_one(proc, local_iters)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("inspector pass panicked"))
                    .collect()
            })
        } else {
            owned
                .iter()
                .enumerate()
                .take(strat.procs)
                .map(|(proc, local_iters)| build_one(proc, local_iters))
                .collect()
        };
        let mut inspectors = Vec::with_capacity(strat.procs);
        let mut node_data = Vec::with_capacity(strat.procs);
        let mut inspector_events = Vec::new();
        for prep in prepped {
            let (insp, data, events) = prep?;
            inspectors.push(insp);
            node_data.push(Arc::new(data));
            inspector_events.extend(events);
        }

        Self::assemble(
            spec,
            strat,
            cfg,
            iter_loc,
            owned,
            inspectors,
            node_data,
            inspector_events,
            tile_span,
        )
    }

    /// Prepare a phased run by *adopting* externally produced flat plans
    /// (one [`FlatInspection`] per processor, e.g. emitted directly by
    /// the `threadedc` compiler) instead of running the inspector here.
    /// Each plan is verified against the spec's indirection before
    /// anything executes — a malformed or stale plan is a typed
    /// [`EngineError::Plan`], never silent corruption. The resulting
    /// prepared run is bit-identical to one built by [`Self::new`] on
    /// the same `(spec, strategy)`.
    pub(crate) fn new_from_flat(
        spec: &PhasedSpec<K>,
        strat: &StrategyConfig,
        cfg: &ExecutionConfig,
        flats: Vec<lightinspector::FlatInspection>,
    ) -> Result<Self, EngineError> {
        validate_phased_spec(spec)?;
        let geometry = PhaseGeometry::try_new(strat.procs, strat.k, spec.num_elements)?;
        let m = spec.kernel.num_refs();
        let total_iterations = spec.num_iterations();
        let tile_span = resolve_tile_span(&cfg.tuning, cfg, &geometry, &*spec.kernel);
        if flats.len() != strat.procs {
            return Err(EngineError::Shape {
                what: "flat inspections (strat.procs)",
                expected: strat.procs,
                got: flats.len(),
            });
        }
        let owned = distribute(total_iterations, strat.procs, strat.distribution);
        let mut iter_loc = vec![(0u32, 0u32); total_iterations];
        for (proc, iters) in owned.iter().enumerate() {
            for (li, &gi) in iters.iter().enumerate() {
                iter_loc[gi as usize] = (proc as u32, li as u32);
            }
        }

        let mut inspectors = Vec::with_capacity(strat.procs);
        let mut node_data = Vec::with_capacity(strat.procs);
        for (proc, fi) in flats.into_iter().enumerate() {
            if fi.proc_id != proc {
                return Err(EngineError::Shape {
                    what: "flat inspection proc_id",
                    expected: proc,
                    got: fi.proc_id,
                });
            }
            if fi.geometry != geometry {
                return Err(EngineError::Plan(lightinspector::PlanError::FlatShape {
                    what: "inspection geometry must match (procs, k, num_elements)",
                }));
            }
            if fi.flat.m() != m {
                return Err(EngineError::Shape {
                    what: "flat plan ref arity (kernel.num_refs)",
                    expected: m,
                    got: fi.flat.m(),
                });
            }
            let local_iters = &owned[proc];
            if fi.iters.len() != local_iters.len()
                || fi.iter_phase.len() != local_iters.len()
                || fi.flat.refs.len() != local_iters.len() * m
            {
                return Err(EngineError::Plan(lightinspector::PlanError::FlatShape {
                    what: "inspection iteration count must match the distribution",
                }));
            }
            let local_ind: Vec<Vec<u32>> = (0..m)
                .map(|r| {
                    local_iters
                        .iter()
                        .map(|&i| spec.indirection[r][i as usize])
                        .collect()
                })
                .collect();
            let plan = fi.to_plan();
            // Verified adoption: `from_plan` runs the full plan checker
            // against the local indirection before indexing.
            let insp = IncrementalInspector::from_plan(plan, local_ind)?;
            let data = NodePlanData::from_parts(
                insp.plan().clone(),
                fi.flat,
                insp.indirection(),
                local_iters,
                spec.num_elements,
                total_iterations,
                &*spec.kernel,
                tile_span,
            );
            inspectors.push(insp);
            node_data.push(Arc::new(data));
        }

        Self::assemble(
            spec,
            strat,
            cfg,
            iter_loc,
            owned,
            inspectors,
            node_data,
            Vec::new(),
            tile_span,
        )
    }

    /// Common tail of [`Self::new`] and [`Self::new_from_flat`]: read
    /// state, backend template, and the prepared-run record itself.
    #[allow(clippy::too_many_arguments)]
    fn assemble(
        spec: &PhasedSpec<K>,
        strat: &StrategyConfig,
        cfg: &ExecutionConfig,
        iter_loc: Vec<(u32, u32)>,
        owned: Vec<Vec<u32>>,
        inspectors: Vec<IncrementalInspector>,
        node_data: Vec<Arc<NodePlanData>>,
        inspector_events: Vec<TraceEvent>,
        tile_span: Option<usize>,
    ) -> Result<Self, EngineError> {
        let n_read = spec.kernel.num_read_arrays();
        let read_init = spec.kernel.init_read();
        if read_init.len() != spec.num_elements * n_read {
            return Err(EngineError::Shape {
                what: "init_read length (num_elements * num_read_arrays)",
                expected: spec.num_elements * n_read,
                got: read_init.len(),
            });
        }

        let updates_read = spec.kernel.updates_read_state();
        let (mem_cfg, overheads, template) = match cfg.backend {
            BackendKind::Sim => (
                cfg.sim.mem,
                (
                    cfg.sim.phased_iter_overhead_cycles,
                    cfg.sim.phased_copy_overhead_cycles,
                ),
                PhasedTemplate::Sim(build_template(strat, updates_read)),
            ),
            BackendKind::Native => (
                memsim::MemConfig::i860xp(),
                (0, 0),
                PhasedTemplate::Native(build_template(strat, updates_read)),
            ),
        };

        // The plan-shaping Tuning knobs participate in the cache
        // identity: a tiled plan is not interchangeable with an untiled
        // one. Execute-time knobs (simd, host_threads) deliberately do
        // not — see [`Tuning::plan_fingerprint`].
        let mut structure_hash = spec.structure_hash(strat);
        fold64(&mut structure_hash, cfg.tuning.plan_fingerprint());
        let layout_flat = matches!(strat.layout, LoopLayout::Flat)
            && matches!(cfg.tuning.layout, LoopLayout::Flat);

        Ok(PreparedPhased {
            kernel: Arc::clone(&spec.kernel),
            num_elements: spec.num_elements,
            strat: *strat,
            tuning: cfg.tuning,
            tile_span,
            layout_flat,
            indirection: spec.indirection.as_ref().clone(),
            iter_loc,
            inspectors,
            local_iters: owned,
            node_data,
            dirty: vec![false; strat.procs],
            read_init,
            mem_cfg,
            overheads,
            trace_cfg: cfg.trace,
            inspector_events,
            template,
            token: PlanToken::fresh(),
            structure_hash,
            executions: 0,
        })
    }

    /// Cache identity of this plan for cross-request plan caching: the
    /// structure hash captured at prepare, mixed with the mutation
    /// version so [`Self::apply_updates`] derives a new key in `O(1)`
    /// without rehashing the indirection. Equal keys mean the plan is
    /// interchangeable with a fresh prepare of a structurally equal
    /// (spec, strategy) pair — up to kernel values, which
    /// [`Self::set_kernel`] may swap.
    pub fn cache_key(&self) -> u64 {
        let mut h = self.structure_hash;
        fold64(&mut h, self.token.version());
        h
    }

    /// Swap in a kernel with identical *shape* but (possibly) different
    /// values — weights, read state, arity-preserving body changes.
    /// Valid because the inspector plans, addressing, and program
    /// template depend only on kernel shape; the kernel itself is
    /// re-read from the plan on every execute. The initial read state
    /// is recomputed from the new kernel. Rejects (with no change) any
    /// kernel whose ref/array counts or read-update flag differ.
    pub fn set_kernel(&mut self, kernel: Arc<K>) -> Result<(), EngineError> {
        let checks = [
            ("kernel num_refs", self.kernel.num_refs(), kernel.num_refs()),
            (
                "kernel num_arrays",
                self.kernel.num_arrays(),
                kernel.num_arrays(),
            ),
            (
                "kernel num_read_arrays",
                self.kernel.num_read_arrays(),
                kernel.num_read_arrays(),
            ),
            (
                "kernel updates_read_state",
                usize::from(self.kernel.updates_read_state()),
                usize::from(kernel.updates_read_state()),
            ),
        ];
        for (what, expected, got) in checks {
            if expected != got {
                return Err(EngineError::Shape {
                    what,
                    expected,
                    got,
                });
            }
        }
        let read_init = kernel.init_read();
        if read_init.len() != self.num_elements * kernel.num_read_arrays() {
            return Err(EngineError::Shape {
                what: "init_read length (num_elements * num_read_arrays)",
                expected: self.num_elements * kernel.num_read_arrays(),
                got: read_init.len(),
            });
        }
        self.kernel = kernel;
        self.read_init = read_init;
        Ok(())
    }

    /// The strategy this run was prepared for.
    pub fn strategy(&self) -> &StrategyConfig {
        &self.strat
    }

    /// The [`Tuning`] this run was prepared under.
    pub fn tuning(&self) -> Tuning {
        self.tuning
    }

    /// The resolved phase-local tile span in elements (`None` when the
    /// plan is untiled — [`TileChoice::Off`], or `Auto` on a problem
    /// whose portions already fit the cache budget).
    pub fn tile_span(&self) -> Option<usize> {
        self.tile_span
    }

    /// Number of processors in the prepared plan.
    pub fn num_procs(&self) -> usize {
        self.node_data.len()
    }

    /// Number of phases per sweep (`k·P`).
    pub fn num_phases(&self) -> usize {
        self.node_data.first().map_or(0, |d| d.giters.len())
    }

    /// The (possibly tiled) iteration order of phase `p` on processor
    /// `proc`, as global iteration ids. Exposed so tests can prove the
    /// tiling contract: within one tile block the order is a
    /// subsequence of the untiled order (stable sort).
    pub fn phase_order(&self, proc: usize, p: usize) -> Vec<u32> {
        self.node_data[proc].giters[p].clone()
    }

    /// The first-reference scatter target (local element index) of each
    /// iteration of phase `p` on processor `proc`, in the same order as
    /// [`Self::phase_order`] — the tiling sort key.
    pub fn phase_first_ref_targets(&self, proc: usize, p: usize) -> Vec<u32> {
        let d = &self.node_data[proc];
        let refs = d.flat.phase_refs(p);
        let m = d.flat.m();
        refs.iter().step_by(m.max(1)).copied().collect()
    }

    /// The current global indirection arrays (reflecting all applied
    /// updates).
    pub fn indirection(&self) -> &[Vec<u32>] {
        &self.indirection
    }

    /// Cache identity of this plan (version changes on every
    /// [`Self::apply_updates`]).
    pub fn token(&self) -> PlanToken {
        self.token
    }

    /// Executes performed so far.
    pub fn executions(&self) -> u64 {
        self.executions
    }

    /// Portion-space statistics of the *current* indirection (kept in
    /// sync by [`Self::apply_updates`]): the portion histogram,
    /// max/mean references, distinct-element count, and the skew
    /// coefficient — the inputs to
    /// [`StrategyConfig::auto_select`](crate::StrategyConfig::auto_select).
    pub fn plan_stats(&self) -> lightinspector::PlanStats {
        let geometry = PhaseGeometry::try_new(self.strat.procs, self.strat.k, self.num_elements)
            .expect("prepared runs always hold a valid geometry");
        let refs: Vec<&[u32]> = self.indirection.iter().map(|v| v.as_slice()).collect();
        lightinspector::portion_stats(&geometry, &refs)
    }

    /// Re-route iterations of an adaptive mesh: each entry re-targets
    /// global iteration `iter` to `new_refs` (one element per indirection
    /// array). The affected nodes' plans are updated incrementally in
    /// `O(m)` per iteration via [`lightinspector::incremental`] — no
    /// full re-inspection — and cached phase costs are invalidated.
    pub fn apply_updates(&mut self, updates: &[(usize, Vec<u32>)]) -> Result<(), EngineError> {
        if updates.is_empty() {
            return Ok(());
        }
        let m = self.kernel.num_refs();
        let total = self.indirection[0].len();
        for (iter, new_refs) in updates {
            if new_refs.len() != m {
                return Err(EngineError::Shape {
                    what: "update arity (kernel.num_refs)",
                    expected: m,
                    got: new_refs.len(),
                });
            }
            if *iter >= total {
                return Err(EngineError::Shape {
                    what: "updated iteration index (num_iterations)",
                    expected: total,
                    got: *iter,
                });
            }
            for (r, &e) in new_refs.iter().enumerate() {
                if e as usize >= self.num_elements {
                    return Err(EngineError::Invalid(InspectError::OutOfRange {
                        r,
                        iter: *iter,
                        elem: e,
                        num_elements: self.num_elements,
                    }));
                }
            }
        }
        for (iter, new_refs) in updates {
            let (proc, local) = self.iter_loc[*iter];
            self.inspectors[proc as usize].update(local as usize, new_refs);
            for (r, &e) in new_refs.iter().enumerate() {
                self.indirection[r][*iter] = e;
            }
            self.dirty[proc as usize] = true;
        }
        self.token.bump();
        Ok(())
    }

    /// Rebuild frozen snapshots for nodes dirtied by incremental updates.
    fn refresh_dirty(&mut self) {
        let total_iterations = self.indirection[0].len();
        for proc in 0..self.strat.procs {
            if !self.dirty[proc] {
                continue;
            }
            self.node_data[proc] = Arc::new(NodePlanData::from_inspector(
                &self.inspectors[proc],
                &self.local_iters[proc],
                self.num_elements,
                total_iterations,
                &*self.kernel,
                self.tile_span,
            ));
            self.dirty[proc] = false;
        }
    }

    /// Instantiate per-node states from pooled buffers. `simd` is the
    /// already-[`vector::resolve`]d execute-time vector mode.
    fn make_nodes(&self, ws: &mut Workspace, sim: bool, simd: SimdMode) -> Vec<PhasedNode<K>> {
        let kp = self.strat.phases_per_sweep();
        let r_arrays = self.kernel.num_arrays();
        let n_read = self.kernel.num_read_arrays();
        let m = self.kernel.num_refs();
        let n = self.num_elements;
        let flat = self.layout_flat;
        let cached = if sim {
            ws.costs_for(self.token).cloned()
        } else {
            None
        };
        // Native flat runs share one region allocation: the ring
        // rotation moves portion *ownership* (a bare sync), never the
        // doubles. The simulator keeps private arrays and real payloads
        // so the modeled message costs stay byte-identical, and the
        // nested diagnostic layout keeps the naive copying path as the
        // bit-identity reference.
        let region = (!sim && flat).then(|| Arc::new(SharedX::new(n * r_arrays)));
        let shared_read = region.is_some().then(|| {
            Arc::new(SharedRead::new(
                &self.read_init,
                self.kernel.updates_read_state(),
            ))
        });
        let mut nodes = Vec::with_capacity(self.strat.procs);
        for proc in 0..self.strat.procs {
            let data = Arc::clone(&self.node_data[proc]);
            let x = if region.is_some() {
                // Only the private buffer extension: the element range
                // lives in the shared region.
                ws.take_buffer(data.plan.buffer_len * r_arrays)
            } else {
                ws.take_buffer((n + data.plan.buffer_len) * r_arrays)
            };
            let mut read = if shared_read.is_some() {
                Vec::new()
            } else {
                ws.take_buffer(n * n_read)
            };
            if shared_read.is_none() {
                read.copy_from_slice(&self.read_init);
            }
            let phase_cost = cached
                .as_ref()
                .and_then(|c| c.get(proc).cloned())
                .unwrap_or_else(|| vec![None; kp]);
            nodes.push(PhasedNode {
                proc,
                sweeps: self.strat.sweeps,
                kernel: Arc::clone(&self.kernel),
                data,
                x,
                region: region.clone(),
                shared_read: shared_read.clone(),
                read,
                r_arrays,
                n_read,
                flat,
                simd,
                out: vec![0.0; m * r_arrays],
                pool: Vec::new(),
                phase_cost,
                stream: StreamModel::new(self.mem_cfg),
                iter_overhead: self.overheads.0,
                copy_overhead: self.overheads.1,
                staged: Vec::new(),
                results: Vec::new(),
            });
        }
        nodes
    }

    /// Assemble global arrays from per-node final portions, return the
    /// node buffers to the pool, and (for simulated runs) harvest the
    /// measured phase costs into the workspace cache.
    fn finish(&self, nodes: Vec<PhasedNode<K>>, ws: &mut Workspace, sim: bool) -> Assembled {
        let n = self.num_elements;
        let r_arrays = self.kernel.num_arrays();
        let r_read = self.kernel.num_read_arrays();
        let mut x = vec![vec![0.0f64; n]; r_arrays];
        let mut read = vec![vec![0.0f64; n]; r_read];
        let mut counts = Vec::with_capacity(nodes.len());
        let mut harvest: PhaseCosts = Vec::with_capacity(if sim { nodes.len() } else { 0 });
        for node in nodes {
            counts.push(node.data.plan.phase_iter_counts());
            // De-interleave final portions into the public per-array
            // shape — the only place the interleaved layout leaks out.
            for (portion, xs, rs) in node.results {
                let range = node.data.geometry.portion_range(portion);
                for (i, v) in range.clone().enumerate() {
                    for (a, xa) in x.iter_mut().enumerate() {
                        xa[v] = xs[i * r_arrays + a];
                    }
                }
                for (i, v) in range.enumerate() {
                    for (a, ra) in read.iter_mut().enumerate() {
                        ra[v] = rs[i * r_read + a];
                    }
                }
            }
            if sim {
                harvest.push(node.phase_cost);
            }
            ws.put_buffer(node.x);
            ws.put_buffer(node.read);
            for b in node.pool {
                ws.put_buffer(b.into_vec());
            }
        }
        if sim {
            ws.store_costs(self.token, harvest);
        }
        (x, read, counts)
    }

    fn provenance(&self, backend: &'static str, reused: bool) -> Provenance {
        Provenance {
            engine: "phased",
            backend,
            reused_plan: reused,
            executions: self.executions,
        }
    }

    /// A sequential fallback outcome computed from the *current*
    /// indirection arrays (post-updates).
    fn seq_fallback(&self) -> RunOutcome {
        let spec = PhasedSpec {
            kernel: Arc::clone(&self.kernel),
            num_elements: self.num_elements,
            indirection: Arc::new(self.indirection.clone()),
        };
        let seq = seq_reduction(&spec, self.strat.sweeps, SimConfig::default());
        RunOutcome {
            values: seq.x,
            read: seq.read,
            time_cycles: seq.cycles,
            seconds: seq.seconds,
            ..RunOutcome::default()
        }
    }

    /// Replay the prepare-time LightInspector stage events into a fresh
    /// sink so traced executes show inspection ahead of the run.
    fn replay_inspector_events(&self, sink: &dyn TraceSink) {
        if sink.enabled() {
            for &ev in &self.inspector_events {
                sink.record(ev);
            }
        }
    }

    fn execute(
        &mut self,
        cfg: &ExecutionConfig,
        ws: &mut Workspace,
    ) -> Result<RunOutcome, EngineError> {
        self.refresh_dirty();
        let reused = self.executions > 0;
        self.executions += 1;
        let sink = cfg.trace.make_sink(self.strat.procs);
        self.replay_inspector_events(sink.as_ref());
        // Execute-time vector mode: the *caller's* config wins over the
        // prepare-time tuning, so a cached plan can be re-executed
        // scalar (the server's shed ladder relies on this).
        let simd = vector::resolve(cfg.tuning.simd);
        match (&self.template, cfg.backend) {
            (PhasedTemplate::Sim(tmpl), BackendKind::Sim) => {
                let nodes = self.make_nodes(ws, true, simd);
                let prog = tmpl.instantiate(nodes);
                let report = run_sim_traced(prog, cfg.sim, Arc::clone(&sink));
                assert_eq!(report.stats.unfired_fibers, 0, "phase fiber starved");
                let (values, read, counts) = self.finish(report.states, ws, true);
                let mut out = RunOutcome {
                    values,
                    read,
                    time_cycles: report.time_cycles,
                    seconds: report.seconds,
                    stats: report.stats,
                    phase_iter_counts: counts,
                    trace: report.trace,
                    provenance: self.provenance("sim", reused),
                    ..RunOutcome::default()
                };
                out.fill_metrics();
                out.record_trace_drops(sink.as_ref());
                Ok(out)
            }
            (PhasedTemplate::Native(_), BackendKind::Native) => {
                let base = cfg.native;
                let mut out = match cfg.recovery {
                    None => self.native_attempt(base, &sink, ws, simd)?,
                    Some(policy) => run_recovery_ladder(
                        policy,
                        sink.as_ref(),
                        |attempt| attempt_faults(base.faults, attempt).map(|f| f.seed),
                        |attempt| {
                            let mut c = base;
                            c.faults = attempt_faults(base.faults, attempt);
                            self.native_attempt(c, &sink, ws, simd)
                        },
                        || self.seq_fallback(),
                    )?,
                };
                // The sink accumulates across retry attempts, so the
                // drained stream shows every rung, not just the winner.
                out.trace = sink.drain();
                out.provenance = self.provenance("native", reused);
                out.fill_metrics();
                out.record_trace_drops(sink.as_ref());
                Ok(out)
            }
            _ => Err(EngineError::Unsupported(
                "prepared run was built for the other backend",
            )),
        }
    }

    /// One native run from the prepared plan. A starved machine — a
    /// phase fiber whose sync never arrives, e.g. because a fault plan
    /// dropped the message — is always reported as
    /// [`RunError::Stalled`][earth_model::native::RunError], never as a
    /// silently short result: the phased program has no legitimate
    /// unfired fibers.
    fn native_attempt(
        &self,
        cfg: NativeConfig,
        sink: &Arc<dyn TraceSink>,
        ws: &mut Workspace,
        simd: SimdMode,
    ) -> Result<RunOutcome, EngineError> {
        let PhasedTemplate::Native(tmpl) = &self.template else {
            return Err(EngineError::Unsupported(
                "prepared run was built for the simulator",
            ));
        };
        let cfg = NativeConfig {
            starved_is_error: true,
            ..cfg
        };
        let nodes = self.make_nodes(ws, false, simd);
        let prog = tmpl.instantiate(nodes);
        let report = run_native_traced(prog, cfg, Arc::clone(sink))?;
        let (values, read, counts) = self.finish(report.states, ws, false);
        Ok(RunOutcome {
            values,
            read,
            wall: report.wall,
            stats: report.stats,
            phase_iter_counts: counts,
            ..RunOutcome::default()
        })
    }

    /// The general recovery form: the caller chooses the backend
    /// configuration of each attempt (attempt numbers start at 0).
    /// Invalid-spec errors are returned immediately — retrying a caller
    /// bug cannot succeed; only runtime failures walk the ladder.
    pub fn execute_recovering_with(
        &mut self,
        ws: &mut Workspace,
        policy: RecoveryPolicy,
        cfg_for_attempt: impl Fn(u32) -> NativeConfig,
    ) -> Result<RunOutcome, EngineError> {
        self.refresh_dirty();
        let reused = self.executions > 0;
        self.executions += 1;
        let sink = self.trace_cfg.make_sink(self.strat.procs);
        self.replay_inspector_events(sink.as_ref());
        // No caller config here: the prepare-time tuning supplies the
        // vector mode.
        let simd = vector::resolve(self.tuning.simd);
        let mut out = run_recovery_ladder(
            policy,
            sink.as_ref(),
            |attempt| cfg_for_attempt(attempt).faults.map(|f| f.seed),
            |attempt| self.native_attempt(cfg_for_attempt(attempt), &sink, ws, simd),
            || self.seq_fallback(),
        )?;
        out.trace = sink.drain();
        out.provenance = self.provenance("native", reused);
        out.fill_metrics();
        out.record_trace_drops(sink.as_ref());
        Ok(out)
    }
}

/// The phased executor as a [`ReductionEngine`]: construct it from an
/// [`ExecutionConfig`], `prepare` once per `(spec, strategy)`, `execute`
/// per run.
#[derive(Debug, Clone, Copy)]
pub struct PhasedEngine {
    cfg: ExecutionConfig,
}

impl PhasedEngine {
    /// The general constructor: any [`ExecutionConfig`] (or a bare
    /// `SimConfig`/`NativeConfig` via `Into`).
    pub fn new(cfg: impl Into<ExecutionConfig>) -> Self {
        PhasedEngine { cfg: cfg.into() }
    }

    /// Run on the discrete-event simulator.
    pub fn sim(cfg: SimConfig) -> Self {
        Self::new(ExecutionConfig::sim(cfg))
    }

    /// Run on real OS threads (one per simulated node).
    pub fn native(cfg: NativeConfig) -> Self {
        Self::new(ExecutionConfig::native(cfg))
    }

    /// Run natively under a [`RecoveryPolicy`]: retry failed runs with
    /// exponential backoff (re-instantiating the program each time and,
    /// when a fault plan is configured, reseeding it per attempt), then
    /// fall back to the sequential executor. Callers always get a
    /// bit-correct answer or a typed error — never a hang, never silent
    /// corruption.
    pub fn recovering(cfg: NativeConfig, policy: RecoveryPolicy) -> Self {
        Self::new(ExecutionConfig::native(cfg).with_recovery(policy))
    }

    pub fn config(&self) -> &ExecutionConfig {
        &self.cfg
    }

    /// Prepare by adopting compiler-emitted flat plans (one
    /// [`lightinspector::FlatInspection`] per processor, built under the
    /// same iteration distribution as `strat`) instead of running the
    /// inspector. Every plan is verified against `spec.indirection`
    /// before adoption; the prepared run then behaves exactly like one
    /// from [`ReductionEngine::prepare`] — incremental updates, plan
    /// caching, and repeated executes all work.
    pub fn prepare_from_flat<K: EdgeKernel>(
        &self,
        spec: &PhasedSpec<K>,
        strat: &StrategyConfig,
        flats: Vec<lightinspector::FlatInspection>,
    ) -> Result<PreparedPhased<K>, EngineError> {
        PreparedPhased::new_from_flat(spec, strat, &self.cfg, flats)
    }
}

impl<K: EdgeKernel> ReductionEngine<PhasedSpec<K>> for PhasedEngine {
    type Prepared = PreparedPhased<K>;

    fn name(&self) -> &'static str {
        "phased"
    }

    fn prepare(
        &self,
        spec: &PhasedSpec<K>,
        strat: &StrategyConfig,
    ) -> Result<Self::Prepared, EngineError> {
        PreparedPhased::new(spec, strat, &self.cfg)
    }

    fn execute(
        &self,
        prepared: &mut Self::Prepared,
        ws: &mut Workspace,
    ) -> Result<RunOutcome, EngineError> {
        prepared.execute(&self.cfg, ws)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use crate::kernel::WeightedPairKernel;
    use crate::seq::seq_reduction;
    use workloads::Distribution;

    fn tiny_spec(num_elems: usize, seed: u64, iters: usize) -> PhasedSpec<WeightedPairKernel> {
        let mut s = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let ia1: Vec<u32> = (0..iters)
            .map(|_| (next() % num_elems as u64) as u32)
            .collect();
        let ia2: Vec<u32> = (0..iters)
            .map(|_| (next() % num_elems as u64) as u32)
            .collect();
        let weights: Vec<f64> = (0..iters).map(|_| (next() % 1000) as f64 / 100.0).collect();
        PhasedSpec {
            kernel: Arc::new(WeightedPairKernel {
                weights: Arc::new(weights),
            }),
            num_elements: num_elems,
            indirection: Arc::new(vec![ia1, ia2]),
        }
    }

    fn run_sim_engine(spec: &PhasedSpec<WeightedPairKernel>, strat: &StrategyConfig) -> RunOutcome {
        PhasedEngine::sim(SimConfig::default())
            .run(spec, strat)
            .unwrap()
    }

    fn check_matches_seq(spec: &PhasedSpec<WeightedPairKernel>, strat: StrategyConfig) {
        let seq = seq_reduction(spec, strat.sweeps, SimConfig::default());
        let res = run_sim_engine(spec, &strat);
        assert!(
            approx_eq(&res.values[0], &seq.x[0], 1e-9),
            "phased vs sequential mismatch for {}P {}",
            strat.procs,
            strat.label()
        );
    }

    #[test]
    fn two_procs_k2_matches_sequential() {
        let spec = tiny_spec(32, 1, 200);
        check_matches_seq(&spec, StrategyConfig::new(2, 2, Distribution::Cyclic, 3));
    }

    #[test]
    fn one_proc_degenerate_case() {
        let spec = tiny_spec(16, 2, 50);
        check_matches_seq(&spec, StrategyConfig::new(1, 2, Distribution::Block, 2));
    }

    #[test]
    fn k1_matches_sequential() {
        let spec = tiny_spec(24, 3, 120);
        check_matches_seq(&spec, StrategyConfig::new(3, 1, Distribution::Block, 2));
    }

    #[test]
    fn k4_block_matches_sequential() {
        let spec = tiny_spec(64, 4, 500);
        check_matches_seq(&spec, StrategyConfig::new(4, 4, Distribution::Block, 2));
    }

    #[test]
    fn many_procs_cyclic() {
        let spec = tiny_spec(64, 5, 400);
        check_matches_seq(&spec, StrategyConfig::new(8, 2, Distribution::Cyclic, 3));
    }

    #[test]
    fn single_sweep() {
        let spec = tiny_spec(32, 6, 100);
        check_matches_seq(&spec, StrategyConfig::new(4, 2, Distribution::Cyclic, 1));
    }

    /// Build the per-proc flat inspections exactly the way the compiler
    /// does: split iterations under the strategy's distribution, then
    /// run the one-pass flat emitter on each local slice.
    fn emit_flats(
        spec: &PhasedSpec<WeightedPairKernel>,
        strat: &StrategyConfig,
    ) -> Vec<lightinspector::FlatInspection> {
        let geometry = PhaseGeometry::try_new(strat.procs, strat.k, spec.num_elements).unwrap();
        let owned = distribute(spec.num_iterations(), strat.procs, strat.distribution);
        (0..strat.procs)
            .map(|proc| {
                let local: Vec<Vec<u32>> = spec
                    .indirection
                    .iter()
                    .map(|arr| owned[proc].iter().map(|&i| arr[i as usize]).collect())
                    .collect();
                let refs: Vec<&[u32]> = local.iter().map(|v| v.as_slice()).collect();
                lightinspector::inspect_flat(lightinspector::InspectorInput {
                    geometry,
                    proc_id: proc,
                    indirection: &refs,
                })
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn prepare_from_flat_is_bit_identical_to_prepare() {
        let spec = tiny_spec(48, 11, 300);
        for strat in [
            StrategyConfig::new(2, 2, Distribution::Cyclic, 3),
            StrategyConfig::new(4, 1, Distribution::Block, 2),
            StrategyConfig::new(3, 3, Distribution::Cyclic, 2),
        ] {
            let engine = PhasedEngine::sim(SimConfig::default());
            let mut normal = engine.prepare(&spec, &strat).unwrap();
            let mut adopted = engine
                .prepare_from_flat(&spec, &strat, emit_flats(&spec, &strat))
                .unwrap();
            let mut ws1 = Workspace::new();
            let mut ws2 = Workspace::new();
            let a = engine.execute(&mut normal, &mut ws1).unwrap();
            let b = engine.execute(&mut adopted, &mut ws2).unwrap();
            for (x, y) in a.values[0].iter().zip(&b.values[0]) {
                assert_eq!(x.to_bits(), y.to_bits(), "{}", strat.label());
            }
            assert_eq!(a.time_cycles, b.time_cycles, "{}", strat.label());
        }
    }

    #[test]
    fn prepare_from_flat_rejects_mismatched_plans() {
        let spec = tiny_spec(32, 12, 100);
        let strat = StrategyConfig::new(2, 2, Distribution::Block, 1);
        let engine = PhasedEngine::sim(SimConfig::default());
        // Wrong processor count.
        let flats = emit_flats(&spec, &strat);
        let err = engine
            .prepare_from_flat(&spec, &strat, flats[..1].to_vec())
            .unwrap_err();
        assert!(matches!(err, EngineError::Shape { .. }), "{err}");
        // Plans built for a different distribution fail verification.
        let other = StrategyConfig::new(2, 2, Distribution::Cyclic, 1);
        let err = engine
            .prepare_from_flat(&spec, &strat, emit_flats(&spec, &other))
            .unwrap_err();
        assert!(matches!(err, EngineError::Plan(_)), "{err}");
    }

    #[test]
    fn native_backend_matches_sequential() {
        let spec = tiny_spec(32, 7, 200);
        let strat = StrategyConfig::new(2, 2, Distribution::Cyclic, 3);
        let seq = seq_reduction(&spec, strat.sweeps, SimConfig::default());
        let res = PhasedEngine::native(NativeConfig::default())
            .run(&spec, &strat)
            .unwrap();
        assert!(approx_eq(&res.values[0], &seq.x[0], 1e-9));
    }

    #[test]
    fn k2_overlaps_better_than_k1() {
        // On several processors with nontrivial portions, k=2 should beat
        // k=1 thanks to communication/computation overlap.
        let spec = tiny_spec(4096, 8, 20_000);
        let t1 =
            run_sim_engine(&spec, &StrategyConfig::new(8, 1, Distribution::Cyclic, 3)).time_cycles;
        let t2 =
            run_sim_engine(&spec, &StrategyConfig::new(8, 2, Distribution::Cyclic, 3)).time_cycles;
        assert!(t2 < t1, "k=2 ({t2}) should beat k=1 ({t1})");
    }

    #[test]
    fn communication_independent_of_indirection() {
        // Two specs with identical sizes but different indirection
        // contents must move exactly the same number of bytes.
        let a = tiny_spec(256, 10, 2_000);
        let b = tiny_spec(256, 11, 2_000);
        let strat = StrategyConfig::new(4, 2, Distribution::Block, 2);
        let ra = run_sim_engine(&a, &strat);
        let rb = run_sim_engine(&b, &strat);
        assert_eq!(ra.stats.ops.messages, rb.stats.ops.messages);
        assert_eq!(ra.stats.ops.bytes, rb.stats.ops.bytes);
    }

    #[test]
    fn phase_counts_reported() {
        let spec = tiny_spec(64, 12, 300);
        let strat = StrategyConfig::new(4, 2, Distribution::Cyclic, 1);
        let res = run_sim_engine(&spec, &strat);
        assert_eq!(res.phase_iter_counts.len(), 4);
        let total: usize = res.phase_iter_counts.iter().flatten().sum();
        assert_eq!(total, 300);
    }

    #[test]
    fn prepare_once_execute_many_is_bit_identical() {
        let spec = tiny_spec(48, 13, 400);
        let strat = StrategyConfig::new(4, 2, Distribution::Cyclic, 2);
        let engine = PhasedEngine::sim(SimConfig::default());
        let mut prepared = engine.prepare(&spec, &strat).unwrap();
        let mut ws = Workspace::new();
        let first = engine.execute(&mut prepared, &mut ws).unwrap();
        assert!(!first.provenance.reused_plan);
        for _ in 0..3 {
            let fresh = engine.run(&spec, &strat).unwrap();
            let again = engine.execute(&mut prepared, &mut ws).unwrap();
            assert!(again.provenance.reused_plan);
            assert_eq!(
                again.values, fresh.values,
                "reused plan must be bit-identical"
            );
            assert_eq!(again.values, first.values);
        }
        assert_eq!(prepared.executions(), 4);
        assert!(ws.has_cached_costs(), "sim executes cache phase costs");
        assert!(ws.pooled_buffers() > 0, "buffers returned to the pool");
    }

    #[test]
    fn apply_updates_matches_fresh_prepare() {
        let spec = tiny_spec(64, 14, 300);
        let strat = StrategyConfig::new(4, 2, Distribution::Block, 2);
        let engine = PhasedEngine::sim(SimConfig::default());
        let mut prepared = engine.prepare(&spec, &strat).unwrap();
        let mut ws = Workspace::new();
        let _ = engine.execute(&mut prepared, &mut ws).unwrap();

        // Re-route some iterations, then compare against preparing the
        // mutated spec from scratch.
        let updates: Vec<(usize, Vec<u32>)> = (0..20)
            .map(|i| (i * 7 % 300, vec![(i * 3 % 64) as u32, (i * 5 % 64) as u32]))
            .collect();
        prepared.apply_updates(&updates).unwrap();
        let after = engine.execute(&mut prepared, &mut ws).unwrap();

        let mutated = PhasedSpec {
            kernel: Arc::clone(&spec.kernel),
            num_elements: spec.num_elements,
            indirection: Arc::new(prepared.indirection().to_vec()),
        };
        let fresh = engine.run(&mutated, &strat).unwrap();
        assert!(
            approx_eq(&after.values[0], &fresh.values[0], 1e-9),
            "incremental re-prepare must agree with fresh prepare"
        );
    }

    #[test]
    fn structure_hash_keys_on_structure_not_values() {
        let spec = tiny_spec(64, 21, 300);
        let strat = StrategyConfig::new(4, 2, Distribution::Block, 2);
        let h = spec.structure_hash(&strat);
        // Deterministic across calls and clones.
        assert_eq!(h, spec.structure_hash(&strat));
        assert_eq!(h, spec.clone().structure_hash(&strat));
        // Kernel values (weights) do not participate.
        let reweighted = PhasedSpec {
            kernel: Arc::new(WeightedPairKernel {
                weights: Arc::new(vec![9.0; spec.num_iterations()]),
            }),
            ..spec.clone()
        };
        assert_eq!(h, reweighted.structure_hash(&strat));
        // Structure does: indirection contents, geometry, strategy.
        let mut ind = spec.indirection.as_ref().clone();
        ind[0][0] ^= 1;
        let rerouted = PhasedSpec {
            indirection: Arc::new(ind),
            ..spec.clone()
        };
        assert_ne!(h, rerouted.structure_hash(&strat));
        let wider = PhasedSpec {
            num_elements: spec.num_elements + 1,
            ..spec.clone()
        };
        assert_ne!(h, wider.structure_hash(&strat));
        let other_strat = StrategyConfig::new(4, 2, Distribution::Cyclic, 2);
        assert_ne!(h, spec.structure_hash(&other_strat));
    }

    #[test]
    fn cache_key_tracks_incremental_updates() {
        let spec = tiny_spec(64, 22, 300);
        let strat = StrategyConfig::new(4, 2, Distribution::Block, 2);
        let engine = PhasedEngine::sim(SimConfig::default());
        let mut prepared = engine.prepare(&spec, &strat).unwrap();
        let k0 = prepared.cache_key();
        assert_eq!(k0, engine.prepare(&spec, &strat).unwrap().cache_key());
        prepared.apply_updates(&[(0, vec![1, 2])]).unwrap();
        let k1 = prepared.cache_key();
        assert_ne!(k0, k1, "mutation must derive a new cache key");
        assert_eq!(k1, prepared.cache_key());
    }

    #[test]
    fn set_kernel_swaps_values_on_cached_plan() {
        let spec = tiny_spec(48, 23, 250);
        let strat = StrategyConfig::new(3, 2, Distribution::Cyclic, 2);
        let engine = PhasedEngine::sim(SimConfig::default());
        let mut prepared = engine.prepare(&spec, &strat).unwrap();
        let mut ws = Workspace::new();
        let _ = engine.execute(&mut prepared, &mut ws).unwrap();

        let swapped = Arc::new(WeightedPairKernel {
            weights: Arc::new(
                spec.kernel
                    .weights
                    .iter()
                    .map(|w| w * 1.5 + 0.25)
                    .collect::<Vec<f64>>(),
            ),
        });
        prepared.set_kernel(Arc::clone(&swapped)).unwrap();
        let res = engine.execute(&mut prepared, &mut ws).unwrap();

        let fresh_spec = PhasedSpec {
            kernel: swapped,
            ..spec.clone()
        };
        let fresh = engine.run(&fresh_spec, &strat).unwrap();
        assert_eq!(
            res.values, fresh.values,
            "cached plan with swapped kernel must match a fresh prepare bit-for-bit"
        );
    }

    #[test]
    fn apply_updates_rejects_out_of_range() {
        let spec = tiny_spec(32, 15, 100);
        let strat = StrategyConfig::new(2, 2, Distribution::Block, 1);
        let engine = PhasedEngine::sim(SimConfig::default());
        let mut prepared = engine.prepare(&spec, &strat).unwrap();
        let err = prepared.apply_updates(&[(0, vec![99, 0])]).unwrap_err();
        assert!(matches!(
            err,
            EngineError::Invalid(InspectError::OutOfRange { elem: 99, .. })
        ));
        let err = prepared.apply_updates(&[(500, vec![1, 2])]).unwrap_err();
        assert!(matches!(err, EngineError::Shape { .. }));
    }

    #[test]
    fn traced_sim_run_emits_phase_spans_and_metrics() {
        let spec = tiny_spec(32, 16, 150);
        let strat = StrategyConfig::new(2, 2, Distribution::Cyclic, 2);
        let engine = PhasedEngine::new(ExecutionConfig::sim(SimConfig::default()).traced());
        let res = engine.run(&spec, &strat).unwrap();
        let seq = seq_reduction(&spec, strat.sweeps, SimConfig::default());
        assert!(approx_eq(&res.values[0], &seq.x[0], 1e-9));

        // Every phase fiber emits Enter/Exit plus the copy-stage pair:
        // 2 procs × 2 sweeps × (k·P = 4) phases.
        let enters = res
            .trace
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::PhaseEnter { .. }))
            .count();
        let exits = res
            .trace
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::PhaseExit { .. }))
            .count();
        assert_eq!(enters, 2 * 2 * 4);
        assert_eq!(exits, enters);
        assert!(res
            .trace
            .iter()
            .any(|e| matches!(e.kind, TraceKind::PortionRotate { .. })));
        // The timeline folds cleanly and the metrics mirror the stats.
        assert!(!res.timeline().table().is_empty());
        assert_eq!(
            res.metrics().counter("messages"),
            Some(res.stats.ops.messages)
        );
        assert_eq!(
            res.metrics().counter("trace_events"),
            Some(res.trace.len() as u64)
        );
    }

    #[test]
    fn untraced_run_matches_traced_run_bitwise() {
        let spec = tiny_spec(48, 17, 300);
        let strat = StrategyConfig::new(4, 2, Distribution::Block, 2);
        let plain = PhasedEngine::sim(SimConfig::default())
            .run(&spec, &strat)
            .unwrap();
        let traced = PhasedEngine::new(ExecutionConfig::sim(SimConfig::default()).traced())
            .run(&spec, &strat)
            .unwrap();
        assert!(plain.trace.is_empty());
        assert!(!traced.trace.is_empty());
        assert_eq!(plain.values, traced.values);
        assert_eq!(plain.time_cycles, traced.time_cycles);
        assert_eq!(plain.stats.ops, traced.stats.ops);
    }
}
