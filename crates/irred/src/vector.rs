//! Chunked, auto-vectorizable flat inner loops (and the optional
//! `core::arch` intrinsic lane adds behind the `simd` cargo feature).
//!
//! The scalar flat loops in [`crate::phased`] interleave *compute* (one
//! `EdgeKernel::contrib` call) with *scatter* (2–8 dependent
//! read-modify-writes through indirection) per iteration — the store
//! aliasing between the two keeps the compiler from vectorizing either.
//! The chunked loops here split them: contributions for a [`CHUNK`] of
//! iterations are computed into one stack buffer via
//! [`EdgeKernel::contrib_batch`] (a branchless batch body the compiler
//! can auto-vectorize), then scattered in the original iteration order.
//!
//! ## Bit-identity
//!
//! Every path in this module performs the identical float operations in
//! the identical order as the scalar reference:
//!
//! * `contrib_batch` is contractually bit-identical to per-iteration
//!   `contrib` (see the trait docs);
//! * the scatter walks iterations in original order, references in
//!   order, components in order — exactly the scalar loop's order;
//! * the intrinsic lane adds (`_mm_add_pd`, baseline SSE2 on x86_64)
//!   are lane-independent IEEE adds on *distinct* components — the same
//!   two-operand additions the scalar loop performs, just issued as one
//!   instruction.
//!
//! So chunked and intrinsic execution are bit-identical to scalar **on
//! every input**, not only whole-number weights. Property-tested in
//! `tests/tuning_equivalence.rs`; tiling (which genuinely reorders) has
//! a separate contract, see [`crate::tuning::TileChoice`].

use lightinspector::CopyOp;

use crate::kernel::EdgeKernel;
use crate::phased::{prefetch, PREFETCH_AHEAD};
use crate::tuning::SimdMode;

/// Iterations per contribution batch. 16 iterations × ≤16 slots keeps
/// the stack buffer at 2 KiB — resident in L1 next to the hot loop.
pub(crate) const CHUNK: usize = 16;

/// Widest per-iteration contribution group (`num_refs * num_arrays`)
/// the chunked loops handle; wider kernels stay on the scalar path.
pub(crate) const MAX_W: usize = 16;

/// Whether this build can honour [`SimdMode::Intrinsics`].
pub(crate) fn intrinsics_available() -> bool {
    cfg!(all(feature = "simd", target_arch = "x86_64"))
}

/// Collapse [`SimdMode::Intrinsics`] to [`SimdMode::Chunked`] when the
/// build cannot honour it (feature off or non-x86_64 target).
pub(crate) fn resolve(mode: SimdMode) -> SimdMode {
    match mode {
        SimdMode::Intrinsics if !intrinsics_available() => SimdMode::Chunked,
        m => m,
    }
}

/// Whether the chunked loops support this kernel shape; callers fall
/// back to the scalar path otherwise (results are identical either way).
pub(crate) fn supported(m: usize, r_arrays: usize) -> bool {
    m >= 1 && (1..=4).contains(&r_arrays) && m * r_arrays <= MAX_W
}

/// `dst[0..R] += src[0..R]`, the scatter/fold lane add. With the `simd`
/// feature on x86_64 and `intr` set, pairs of lanes are added with
/// baseline-SSE2 `_mm_add_pd` — per-lane IEEE adds, so the values are
/// bit-identical to the scalar loop either way.
///
/// # Safety
/// `dst` and `src` must be valid for `R` doubles and must not overlap.
#[inline(always)]
unsafe fn add_lanes<const R: usize>(dst: *mut f64, src: *const f64, intr: bool) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if intr && R >= 2 {
        use std::arch::x86_64::{_mm_add_pd, _mm_loadu_pd, _mm_storeu_pd};
        let mut a = 0;
        while a + 2 <= R {
            let d = _mm_loadu_pd(dst.add(a));
            let s = _mm_loadu_pd(src.add(a));
            _mm_storeu_pd(dst.add(a), _mm_add_pd(d, s));
            a += 2;
        }
        if a < R {
            *dst.add(a) += *src.add(a);
        }
        return;
    }
    let _ = intr;
    for a in 0..R {
        *dst.add(a) += *src.add(a);
    }
}

/// The copy loop of the chunked region path: fold each buffered
/// contribution into its resident element and reset the slot. Same
/// float operations, same order as the scalar `fold_copies_region`
/// (sources are buffer slots, destinations resident elements — always
/// disjoint, so the read-all-then-zero order matches the scalar
/// per-component walk bit for bit).
///
/// # Safety
/// As for the scalar fold: copy sources must be buffer slots
/// (`src >= split / R` elements) sized into `buf`, destinations
/// resident elements of the portion the caller owns in `rp`.
unsafe fn fold_copies_vec<const R: usize>(
    rp: *mut f64,
    split: usize,
    buf: &mut [f64],
    copies: &[CopyOp],
    intr: bool,
) {
    let bp = buf.as_mut_ptr();
    for (i, c) in copies.iter().enumerate() {
        if let Some(nc) = copies.get(i + PREFETCH_AHEAD) {
            prefetch(rp.wrapping_add(nc.dest as usize * R) as *const f64);
        }
        let sb = c.src as usize * R;
        let db = c.dest as usize * R;
        debug_assert!(sb >= split && sb - split + R <= buf.len());
        debug_assert!(db + R <= split);
        let sp = bp.add(sb - split);
        add_lanes::<R>(rp.add(db), sp, intr);
        for a in 0..R {
            *sp.add(a) = 0.0;
        }
    }
}

/// Chunked flat loops against the shared region of a zero-copy native
/// run — the vector counterpart of `loops_flat_region_r`. `rp`/`split`
/// are the region's base pointer and element-slot length.
///
/// # Safety
/// Same contract as the scalar region loops: `rp` must be the shared
/// region of a phase whose portion the caller owns under the ring
/// protocol, every scatter ref below `split / R` elements must target
/// that portion, and `buf` must hold the node's buffer extension.
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn loops_flat_region_vec<K: EdgeKernel>(
    kernel: &K,
    read: &[f64],
    rp: *mut f64,
    split: usize,
    buf: &mut [f64],
    r_arrays: usize,
    giters: &[u32],
    elems: &[u32],
    refs: &[u32],
    copies: &[CopyOp],
    intr: bool,
) {
    macro_rules! r {
        ($r:literal) => {
            chunk_region_r::<K, $r>(
                kernel, read, rp, split, buf, giters, elems, refs, copies, intr,
            )
        };
    }
    match r_arrays {
        1 => r!(1),
        2 => r!(2),
        3 => r!(3),
        4 => r!(4),
        _ => unreachable!("guarded by vector::supported"),
    }
}

#[allow(clippy::too_many_arguments)]
unsafe fn chunk_region_r<K: EdgeKernel, const R: usize>(
    kernel: &K,
    read: &[f64],
    rp: *mut f64,
    split: usize,
    buf: &mut [f64],
    giters: &[u32],
    elems: &[u32],
    refs: &[u32],
    copies: &[CopyOp],
    intr: bool,
) {
    let m = if giters.is_empty() {
        1
    } else {
        refs.len() / giters.len()
    };
    let w = m * R;
    assert!(w <= MAX_W, "guarded by vector::supported");
    assert_eq!(giters.len() * m, refs.len());
    assert_eq!(elems.len(), refs.len());
    let n_read = kernel.num_read_arrays();
    let bp = buf.as_mut_ptr();
    // Branch-free region/buffer select — see `loops_flat_region_r`.
    let target = |base: usize| -> *mut f64 {
        let pr = rp.wrapping_add(base);
        let pb = bp.wrapping_add(base.wrapping_sub(split));
        if base < split {
            pr
        } else {
            pb
        }
    };
    // The stack contribution buffer: one chunk of per-iteration slot
    // groups, zeroed before each batch (the contrib_batch contract).
    let mut outs = [0.0f64; CHUNK * MAX_W];
    let n = giters.len();
    let mut lo = 0usize;
    while lo < n {
        let len = (n - lo).min(CHUNK);
        // Prefetch the *next* chunk's gather lines and scatter targets
        // while this chunk computes — the chunk granularity replaces
        // the scalar path's per-iteration PREFETCH_AHEAD distance.
        for pj in lo + len..(lo + 2 * len).min(n) {
            for r in 0..m {
                if n_read > 0 {
                    prefetch(
                        read.as_ptr()
                            .wrapping_add(*elems.get_unchecked(pj * m + r) as usize * n_read),
                    );
                }
                prefetch(target(*refs.get_unchecked(pj * m + r) as usize * R));
            }
        }
        let batch = &mut outs[..len * w];
        batch.fill(0.0);
        kernel.contrib_batch(
            read,
            &giters[lo..lo + len],
            &elems[lo * m..(lo + len) * m],
            batch,
        );
        // Scatter in original iteration order: j, then r, then the R
        // components — the scalar loop's exact order.
        for j in 0..len {
            for r in 0..m {
                let base = *refs.get_unchecked((lo + j) * m + r) as usize * R;
                debug_assert!(base < split || base - split + R <= buf.len());
                let p = target(base);
                add_lanes::<R>(p, outs.as_ptr().add(j * w + r * R), intr);
            }
        }
        lo += len;
    }
    fold_copies_vec::<R>(rp, split, buf, copies, intr);
}

/// Chunked flat loops over a private `x` array (simulator replay and
/// non-region native runs) — the vector counterpart of `loops_flat_r`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn loops_flat_vec<K: EdgeKernel>(
    kernel: &K,
    read: &[f64],
    x: &mut [f64],
    r_arrays: usize,
    giters: &[u32],
    elems: &[u32],
    refs: &[u32],
    copies: &[CopyOp],
    intr: bool,
) {
    macro_rules! r {
        ($r:literal) => {
            chunk_flat_r::<K, $r>(kernel, read, x, giters, elems, refs, copies, intr)
        };
    }
    match r_arrays {
        1 => r!(1),
        2 => r!(2),
        3 => r!(3),
        4 => r!(4),
        _ => unreachable!("guarded by vector::supported"),
    }
}

#[allow(clippy::too_many_arguments)]
fn chunk_flat_r<K: EdgeKernel, const R: usize>(
    kernel: &K,
    read: &[f64],
    x: &mut [f64],
    giters: &[u32],
    elems: &[u32],
    refs: &[u32],
    copies: &[CopyOp],
    intr: bool,
) {
    let m = if giters.is_empty() {
        1
    } else {
        refs.len() / giters.len()
    };
    let w = m * R;
    assert!(w <= MAX_W, "guarded by vector::supported");
    assert_eq!(giters.len() * m, refs.len());
    assert_eq!(elems.len(), refs.len());
    let mut outs = [0.0f64; CHUNK * MAX_W];
    let n = giters.len();
    let mut lo = 0usize;
    while lo < n {
        let len = (n - lo).min(CHUNK);
        let batch = &mut outs[..len * w];
        batch.fill(0.0);
        kernel.contrib_batch(
            read,
            &giters[lo..lo + len],
            &elems[lo * m..(lo + len) * m],
            batch,
        );
        for j in 0..len {
            for r in 0..m {
                let base = refs[(lo + j) * m + r] as usize * R;
                debug_assert!(base + R <= x.len());
                // SAFETY: `base` is an inspector-produced, plan-verified
                // target sized into `x` at prepare time (see
                // `loops_flat_r`); `outs` holds `len * w` initialized
                // slots and `x`/`outs` never overlap.
                unsafe {
                    add_lanes::<R>(
                        x.as_mut_ptr().add(base),
                        outs.as_ptr().add(j * w + r * R),
                        intr,
                    );
                }
            }
        }
        lo += len;
    }
    for c in copies {
        let sb = c.src as usize * R;
        let db = c.dest as usize * R;
        debug_assert!(sb + R <= x.len() && db + R <= x.len());
        // SAFETY: plan-verified copy endpoints (sources buffer slots,
        // destinations resident elements — disjoint), both sized into
        // `x` at prepare time.
        unsafe {
            let p = x.as_mut_ptr();
            add_lanes::<R>(p.add(db), p.add(sb) as *const f64, intr);
            for a in 0..R {
                *p.add(sb + a) = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_honours_the_build() {
        assert_eq!(resolve(SimdMode::Scalar), SimdMode::Scalar);
        assert_eq!(resolve(SimdMode::Chunked), SimdMode::Chunked);
        let r = resolve(SimdMode::Intrinsics);
        if intrinsics_available() {
            assert_eq!(r, SimdMode::Intrinsics);
        } else {
            assert_eq!(r, SimdMode::Chunked);
        }
    }

    #[test]
    fn supported_bounds_the_shape() {
        assert!(supported(2, 1));
        assert!(supported(2, 4));
        assert!(supported(4, 4));
        assert!(!supported(2, 5));
        assert!(!supported(5, 4));
        assert!(!supported(0, 1));
    }

    #[test]
    fn add_lanes_matches_scalar_adds() {
        let mut dst = [1.5f64, -2.25, 3.125, 0.0625];
        let src = [0.1f64, 0.2, 0.3, 0.4];
        let mut expect = dst;
        for a in 0..4 {
            expect[a] += src[a];
        }
        // SAFETY: both arrays are valid for 4 doubles and disjoint.
        unsafe { add_lanes::<4>(dst.as_mut_ptr(), src.as_ptr(), intrinsics_available()) };
        for a in 0..4 {
            assert_eq!(dst[a].to_bits(), expect[a].to_bits());
        }
    }
}
