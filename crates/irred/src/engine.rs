//! The unified engine layer: one trait, one error type, one result
//! shape, one recovery path for every executor.
//!
//! The paper's amortization argument (§4, Table 2) is that inspection is
//! done **once** and reused over many sweeps. This module makes that
//! reuse first-class: an engine splits a run into
//!
//! 1. [`prepare`](ReductionEngine::prepare) — validate the spec, run the
//!    LightInspector, remap indirection, build the EARTH program
//!    template: everything that depends only on *structure*;
//! 2. [`execute`](ReductionEngine::execute) — instantiate per-node state
//!    from pooled buffers, run the machine, collect a [`RunOutcome`]:
//!    everything that depends on *values*.
//!
//! Outer loops (CG iterations, adaptive time steps) hold the prepared
//! run and call `execute` repeatedly; adaptive mesh changes go through
//! the incremental inspector instead of re-preparing from scratch.

use std::time::Duration;

use earth_model::native::RunError;
use earth_model::RunStats;
use lightinspector::{InspectError, PlanError};
use trace::{MetricsRegistry, Timeline, TraceEvent, TraceKind, TraceSink, RUN_NODE};

use crate::kernel::EdgeKernel;
use crate::prepared::Workspace;
use crate::strategy::{StrategyConfig, StrategyError};

/// Why an engine rejected or failed a run. `Invalid`, `Shape`,
/// `Strategy`, and `Unsupported` are caller bugs and are never retried
/// by the recovery machinery; `Run` is a (possibly transient) backend
/// failure.
#[derive(Debug)]
pub enum EngineError {
    /// The LightInspector rejected the geometry or indirection contents.
    Invalid(InspectError),
    /// The spec's arrays disagree with each other or with the kernel.
    Shape {
        what: &'static str,
        expected: usize,
        got: usize,
    },
    /// The strategy configuration itself is malformed.
    Strategy(StrategyError),
    /// The engine cannot run this spec/backend combination at all
    /// (e.g. the inspector/executor baseline with read-updating kernels).
    Unsupported(&'static str),
    /// The backend returned a structured runtime error (panic or
    /// watchdog stall).
    Run(RunError),
    /// An externally supplied (e.g. compiler-emitted) inspector plan
    /// failed verification against the indirection arrays.
    Plan(PlanError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Invalid(e) => write!(f, "invalid phased spec: {e}"),
            EngineError::Shape {
                what,
                expected,
                got,
            } => {
                write!(f, "malformed spec: {what}: expected {expected}, got {got}")
            }
            EngineError::Strategy(e) => write!(f, "invalid strategy: {e}"),
            EngineError::Unsupported(what) => write!(f, "unsupported by this engine: {what}"),
            EngineError::Run(e) => write!(f, "run failed: {e}"),
            EngineError::Plan(e) => write!(f, "rejected supplied plan: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<InspectError> for EngineError {
    fn from(e: InspectError) -> Self {
        EngineError::Invalid(e)
    }
}

impl From<RunError> for EngineError {
    fn from(e: RunError) -> Self {
        EngineError::Run(e)
    }
}

impl From<StrategyError> for EngineError {
    fn from(e: StrategyError) -> Self {
        EngineError::Strategy(e)
    }
}

impl From<PlanError> for EngineError {
    fn from(e: PlanError) -> Self {
        EngineError::Plan(e)
    }
}

/// Where a [`RunOutcome`] came from: which engine, which backend, and
/// whether the plan was reused from an earlier `execute` on the same
/// prepared run.
#[derive(Debug, Clone, Default)]
pub struct Provenance {
    /// Engine name ([`ReductionEngine::name`]).
    pub engine: &'static str,
    /// `"sim"` or `"native"`.
    pub backend: &'static str,
    /// This execute reused a plan prepared for an earlier execute (i.e.
    /// it skipped inspection, remapping, and program-template building).
    pub reused_plan: bool,
    /// Executions of this prepared run so far, including this one.
    pub executions: u64,
}

/// The uniform result every engine produces.
#[derive(Debug, Default)]
pub struct RunOutcome {
    /// Final reduction arrays (`num_arrays × num_elements`) — the values
    /// after the last sweep. For the gather engine this is `[y]`.
    pub values: Vec<Vec<f64>>,
    /// Final replicated read arrays (`num_read_arrays × num_elements`).
    pub read: Vec<Vec<f64>>,
    /// Simulated cycles (0 for native runs). Under plan reuse the
    /// steady-state per-phase costs measured by an earlier execute are
    /// replayed, so this models a *warm* machine.
    pub time_cycles: u64,
    /// Simulated seconds (0 for native runs).
    pub seconds: f64,
    /// Native wall time (zero for simulated runs).
    pub wall: Duration,
    pub stats: RunStats,
    /// Per-processor, per-phase iteration counts — the load-balance
    /// signature (§5.4.2's block-vs-cyclic analysis).
    pub phase_iter_counts: Vec<Vec<usize>>,
    /// Structured trace events drained from the run's sink (empty unless
    /// the [`ExecutionConfig`](crate::ExecutionConfig) enabled tracing).
    /// On the simulator timestamps are cycles and the stream is
    /// byte-identical across same-seed runs; on the native backend they
    /// are monotonic nanoseconds.
    pub trace: Vec<TraceEvent>,
    /// Named counters/gauges summarizing the run (see
    /// [`RunOutcome::metrics`]).
    pub metrics: MetricsRegistry,
    /// What the recovery ladder did (all-default for direct runs).
    pub recovery: RecoveryReport,
    /// Which engine/backend produced this and whether it reused a plan.
    pub provenance: Provenance,
}

impl RunOutcome {
    /// Fold the trace into per-processor, per-phase spans (compute vs.
    /// copy-loop vs. blocked). Empty unless the run was traced.
    pub fn timeline(&self) -> Timeline {
        Timeline::from_events(&self.trace)
    }

    /// Named counters (`messages`, `bytes`, `fibers_fired`, …) and
    /// gauges (`time_cycles`, `mean_utilization`, …) for this run.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// `DATA_SYNC`/`BLKMOV` messages issued during the run.
    pub fn messages(&self) -> u64 {
        self.stats.ops.messages
    }

    /// Total payload bytes moved by messages.
    pub fn bytes(&self) -> u64 {
        self.stats.ops.bytes
    }

    /// Fibers that actually executed.
    pub fn fibers_fired(&self) -> u64 {
        self.stats.ops.fibers_fired
    }

    /// Mean EU utilization across processors (zero for native runs,
    /// which record no cycle clock).
    pub fn mean_utilization(&self) -> f64 {
        self.stats.mean_utilization()
    }

    /// Populate [`RunOutcome::metrics`] from the other fields. Engines
    /// call this once, as the last step of building an outcome; the
    /// recovery ladder adds its own counters afterwards.
    pub(crate) fn fill_metrics(&mut self) {
        let ops = self.stats.ops;
        let m = &mut self.metrics;
        m.count("fibers_fired", ops.fibers_fired);
        m.count("syncs", ops.syncs);
        m.count("messages", ops.messages);
        m.count("bytes", ops.bytes);
        m.count("local_messages", ops.local_messages);
        m.count("spawns", ops.spawns);
        m.count("trace_events", self.trace.len() as u64);
        m.gauge("time_cycles", self.time_cycles as f64);
        m.gauge("seconds", self.seconds);
        m.gauge("wall_seconds", self.wall.as_secs_f64());
        m.gauge("mean_utilization", self.stats.mean_utilization());
    }

    /// Record how many trace events the run's sink discarded (bounded
    /// rings overwrite the oldest once full). Engines call this after
    /// draining the sink; it pairs with the `trace_events` counter so a
    /// budgeted ring at large node counts degrades visibly instead of
    /// silently truncating the stream.
    pub(crate) fn record_trace_drops(&mut self, sink: &dyn TraceSink) {
        self.metrics.count("trace_dropped_events", sink.dropped());
    }
}

/// How a recovering engine reacts to a failed native run: retry with
/// exponential backoff up to `max_attempts` total attempts (each attempt
/// re-instantiates the program from the prepared plan and, when a fault
/// plan is configured, reseeds it), then optionally fall back to the
/// sequential executor so callers still get a correct answer.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryPolicy {
    /// Total native attempts (≥ 1) before giving up or falling back.
    pub max_attempts: u32,
    /// Sleep before the first retry; doubled (times `backoff_factor`)
    /// before each subsequent one.
    pub initial_backoff: Duration,
    pub backoff_factor: u32,
    /// After exhausting retries, compute the answer sequentially and
    /// return it with a warning in the report instead of an error.
    pub fall_back_to_seq: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_attempts: 2,
            initial_backoff: Duration::from_millis(2),
            backoff_factor: 2,
            fall_back_to_seq: true,
        }
    }
}

/// What the recovery ladder actually did for one call.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Native attempts made (0 when the run bypassed the recovery path).
    pub attempts: u32,
    /// Display-formatted error of each failed attempt, in order.
    pub errors: Vec<String>,
    /// The fault-plan seed in effect at each attempt, aligned with the
    /// attempt number (`fault_seeds[n]` is attempt `n`'s seed; `None`
    /// when no fault plan was configured). Retries reseed the plan, so
    /// recording the per-rung seed makes every failed attempt — and a
    /// server job's error frame — replayable on its own.
    pub fault_seeds: Vec<Option<u64>>,
    /// The answer came from the sequential executor, not the machine.
    pub fell_back_to_seq: bool,
    /// Human-readable summary when anything non-default happened.
    pub warning: Option<String>,
}

/// The unified executor interface.
///
/// `Spec` is the problem description ([`crate::PhasedSpec`] or
/// [`crate::GatherSpec`]); the prepared type owns everything derivable
/// from `(spec, strategy)` alone. `execute` takes the prepared run by
/// `&mut` — prepared runs carry interior state that legitimately evolves
/// across executes (incrementally updated plans, the gather engine's
/// current `x` vector, execution counters); measured phase costs live in
/// the [`Workspace`] so a prepared run can be shared across workspaces.
pub trait ReductionEngine<Spec> {
    /// Everything reusable across executes for one `(spec, strategy)`.
    type Prepared;

    /// Stable engine name for provenance/reporting.
    fn name(&self) -> &'static str;

    /// Validate the spec and do all structure-dependent work once.
    fn prepare(&self, spec: &Spec, strat: &StrategyConfig) -> Result<Self::Prepared, EngineError>;

    /// Run the prepared plan. Steady-state executes draw their buffers
    /// from `ws` instead of allocating, and (on the simulator) replay
    /// phase costs measured by earlier executes of the same plan.
    fn execute(
        &self,
        prepared: &mut Self::Prepared,
        ws: &mut Workspace,
    ) -> Result<RunOutcome, EngineError>;

    /// Convenience: `prepare` + one `execute` with a throwaway workspace.
    fn run(&self, spec: &Spec, strat: &StrategyConfig) -> Result<RunOutcome, EngineError> {
        let mut prepared = self.prepare(spec, strat)?;
        let mut ws = Workspace::new();
        self.execute(&mut prepared, &mut ws)
    }
}

/// Check a phased spec's global arrays against each other and the kernel
/// before any per-node indexing happens. Shared by the phased engine,
/// the sequential engine, and the inspector/executor baseline.
pub fn validate_phased_spec<K: EdgeKernel>(spec: &crate::PhasedSpec<K>) -> Result<(), EngineError> {
    let m = spec.kernel.num_refs();
    if spec.indirection.len() != m {
        return Err(EngineError::Shape {
            what: "indirection arrays (kernel.num_refs)",
            expected: m,
            got: spec.indirection.len(),
        });
    }
    if m == 0 {
        return Err(EngineError::Invalid(InspectError::NoReferences));
    }
    let iters = spec.indirection[0].len();
    for arr in spec.indirection.iter() {
        if arr.len() != iters {
            return Err(EngineError::Shape {
                what: "indirection array length",
                expected: iters,
                got: arr.len(),
            });
        }
    }
    Ok(())
}

/// Check a gather spec: `x` must span the matrix columns and every
/// column index must be in range. Shared by the gather engine's
/// `prepare` and `PreparedGather::set_x`.
pub fn validate_gather_spec(
    matrix: &workloads::SparseMatrix,
    x_len: usize,
) -> Result<(), EngineError> {
    validate_gather_x(matrix, x_len)?;
    for (nz, &c) in matrix.col_idx.iter().enumerate() {
        if c as usize >= matrix.ncols {
            return Err(EngineError::Invalid(InspectError::OutOfRange {
                r: 0,
                iter: nz,
                elem: c,
                num_elements: matrix.ncols,
            }));
        }
    }
    Ok(())
}

/// Just the `x`-length half of [`validate_gather_spec`] (used on every
/// [`set_x`](crate::gather::PreparedGather::set_x)).
pub fn validate_gather_x(
    matrix: &workloads::SparseMatrix,
    x_len: usize,
) -> Result<(), EngineError> {
    if x_len != matrix.ncols {
        return Err(EngineError::Shape {
            what: "gather vector length (matrix.ncols)",
            expected: matrix.ncols,
            got: x_len,
        });
    }
    Ok(())
}

/// The fault plan a given retry rung runs under: attempt 0 keeps the
/// configured plan, later attempts reseed it (same rates, fresh seed) so
/// a retry re-rolls transient faults instead of replaying the failure.
/// Shared by every ladder call site so [`RecoveryReport::fault_seeds`]
/// always matches what actually ran.
pub(crate) fn attempt_faults(
    base: Option<earth_model::FaultConfig>,
    attempt: u32,
) -> Option<earth_model::FaultConfig> {
    base.map(|f| {
        if attempt > 0 {
            f.reseeded(u64::from(attempt))
        } else {
            f
        }
    })
}

/// The one recovery ladder every native engine walks: retry `attempt`
/// with backoff, collecting errors; `Run` errors walk the ladder, caller
/// bugs return immediately. After exhausting retries, `fallback` (the
/// engine's sequential reference) supplies the answer when the policy
/// allows. The returned outcome's `recovery` field records what
/// happened.
///
/// Each rung is recorded into `sink` as a [`TraceKind::RecoveryRung`]
/// event (`attempt: u32::MAX` marks the sequential-fallback rung) at
/// timestamp 0 on [`RUN_NODE`], so a traced run's event stream shows the
/// ladder alongside the per-node machine events.
///
/// `fault_seed_of` reports the fault-plan seed the caller's `attempt`
/// closure will use for a given attempt number (`None` when no fault
/// plan is configured); the ladder records it in
/// [`RecoveryReport::fault_seeds`] so every rung is replayable.
pub(crate) fn run_recovery_ladder(
    policy: RecoveryPolicy,
    sink: &dyn TraceSink,
    fault_seed_of: impl Fn(u32) -> Option<u64>,
    mut attempt: impl FnMut(u32) -> Result<RunOutcome, EngineError>,
    fallback: impl FnOnce() -> RunOutcome,
) -> Result<RunOutcome, EngineError> {
    let mut report = RecoveryReport::default();
    let mut last_err: Option<RunError> = None;
    let mut backoff = policy.initial_backoff;
    let tracing = sink.enabled();
    for n in 0..policy.max_attempts.max(1) {
        if n > 0 {
            std::thread::sleep(backoff);
            backoff *= policy.backoff_factor.max(1);
        }
        if tracing {
            sink.record(TraceEvent::new(
                0,
                RUN_NODE,
                TraceKind::RecoveryRung { attempt: n },
            ));
        }
        report.attempts = n + 1;
        report.fault_seeds.push(fault_seed_of(n));
        match attempt(n) {
            Ok(mut res) => {
                if n > 0 {
                    report.warning = Some(format!(
                        "parallel run succeeded on attempt {} after: {}",
                        n + 1,
                        report.errors.join("; ")
                    ));
                }
                res.metrics.count("recovery_attempts", u64::from(n + 1));
                res.recovery = report;
                return Ok(res);
            }
            Err(EngineError::Run(e)) => {
                report.errors.push(e.to_string());
                last_err = Some(e);
            }
            // Caller bugs: no retry can fix the spec.
            Err(e) => return Err(e),
        }
    }
    if policy.fall_back_to_seq {
        if tracing {
            sink.record(TraceEvent::new(
                0,
                RUN_NODE,
                TraceKind::RecoveryRung { attempt: u32::MAX },
            ));
        }
        let mut res = fallback();
        report.fell_back_to_seq = true;
        report.warning = Some(format!(
            "parallel run failed {} attempt(s) ({}); result computed by the sequential executor",
            report.attempts,
            report.errors.join("; ")
        ));
        res.metrics
            .count("recovery_attempts", u64::from(report.attempts));
        res.metrics.count("recovery_fell_back", 1);
        res.recovery = report;
        Ok(res)
    } else {
        Err(EngineError::Run(
            last_err.expect("at least one attempt ran"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_returns_first_success_unchanged() {
        let out = run_recovery_ladder(
            RecoveryPolicy::default(),
            &trace::NullSink,
            |_| None,
            |_| {
                Ok(RunOutcome {
                    values: vec![vec![1.0]],
                    ..RunOutcome::default()
                })
            },
            || unreachable!("no fallback needed"),
        )
        .unwrap();
        assert_eq!(out.values, vec![vec![1.0]]);
        assert_eq!(out.recovery.attempts, 1);
        assert!(out.recovery.warning.is_none());
    }

    #[test]
    fn ladder_retries_then_succeeds() {
        let policy = RecoveryPolicy {
            max_attempts: 3,
            initial_backoff: Duration::ZERO,
            ..RecoveryPolicy::default()
        };
        let out = run_recovery_ladder(
            policy,
            &trace::NullSink,
            |n| Some(1000 + u64::from(n)),
            |n| {
                if n < 2 {
                    Err(EngineError::Run(RunError::NodePanicked {
                        node: 0,
                        slot: 0,
                        fiber: "t",
                        message: "boom".into(),
                    }))
                } else {
                    Ok(RunOutcome::default())
                }
            },
            || unreachable!(),
        )
        .unwrap();
        assert_eq!(out.recovery.attempts, 3);
        assert_eq!(out.recovery.errors.len(), 2);
        assert!(out.recovery.warning.is_some());
        assert_eq!(
            out.recovery.fault_seeds,
            vec![Some(1000), Some(1001), Some(1002)]
        );
    }

    #[test]
    fn ladder_falls_back_when_allowed() {
        let policy = RecoveryPolicy {
            max_attempts: 1,
            initial_backoff: Duration::ZERO,
            ..RecoveryPolicy::default()
        };
        let out = run_recovery_ladder(
            policy,
            &trace::NullSink,
            |_| None,
            |_| {
                Err(EngineError::Run(RunError::NodePanicked {
                    node: 0,
                    slot: 0,
                    fiber: "t",
                    message: "boom".into(),
                }))
            },
            || RunOutcome {
                values: vec![vec![7.0]],
                ..RunOutcome::default()
            },
        )
        .unwrap();
        assert!(out.recovery.fell_back_to_seq);
        assert_eq!(out.values, vec![vec![7.0]]);
    }

    #[test]
    fn ladder_propagates_caller_bugs_immediately() {
        let mut calls = 0;
        let err = run_recovery_ladder(
            RecoveryPolicy {
                max_attempts: 5,
                initial_backoff: Duration::ZERO,
                ..RecoveryPolicy::default()
            },
            &trace::NullSink,
            |_| None,
            |_| {
                calls += 1;
                Err(EngineError::Shape {
                    what: "x",
                    expected: 1,
                    got: 2,
                })
            },
            || unreachable!(),
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::Shape { .. }));
        assert_eq!(calls, 1);
    }

    #[test]
    fn ladder_records_rung_events_and_metrics() {
        let sink = trace::RingSink::new(0, 64);
        let policy = RecoveryPolicy {
            max_attempts: 2,
            initial_backoff: Duration::ZERO,
            ..RecoveryPolicy::default()
        };
        let out = run_recovery_ladder(
            policy,
            &sink,
            |n| Some(77 + u64::from(n)),
            |_| {
                Err(EngineError::Run(RunError::NodePanicked {
                    node: 0,
                    slot: 0,
                    fiber: "t",
                    message: "boom".into(),
                }))
            },
            RunOutcome::default,
        )
        .unwrap();
        assert_eq!(out.metrics.counter("recovery_attempts"), Some(2));
        assert_eq!(out.metrics.counter("recovery_fell_back"), Some(1));
        assert_eq!(out.recovery.fault_seeds, vec![Some(77), Some(78)]);
        let rungs: Vec<u32> = sink
            .drain()
            .into_iter()
            .filter_map(|e| match e.kind {
                TraceKind::RecoveryRung { attempt } => Some(attempt),
                _ => None,
            })
            .collect();
        assert_eq!(rungs, vec![0, 1, u32::MAX]);
    }
}
