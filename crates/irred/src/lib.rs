//! # irred — phased execution of irregular reductions on the EARTH model
//!
//! This is the paper's primary contribution as a library: the
//! **rotating-portion execution strategy** of §2.2, supported by the
//! LightInspector (crate [`lightinspector`]) and executed on the EARTH
//! model (crate [`earth_model`], either backend).
//!
//! ## The strategy in one paragraph
//!
//! Iterations and their per-iteration data are distributed trivially
//! (block or cyclic — no partitioner). The reduction array is cut into
//! `k·P` portions that rotate around the processor ring; processor `q`
//! owns portion `(k·q + p) mod k·P` during phase `p` and forwards it to
//! `q−1`, where it arrives `k` phases later — so for `k > 1` every
//! transfer has `k` phases of computation to hide behind. Each processor
//! executes the iterations whose earliest-resident reference is owned in
//! the current phase (first loop), buffering contributions to
//! later-resident elements in an extension of the reduction array, and
//! folds buffered contributions into newly arrived portions (second
//! loop). Communication volume and frequency are **independent of the
//! indirection arrays' contents** — the paper's central claim.
//!
//! ## Entry points
//!
//! All four executors implement the [`ReductionEngine`] trait:
//! `prepare` once per `(spec, strategy)` pair, then `execute` the
//! returned prepared run any number of times — repeated executes reuse
//! the inspector plans, the remapped indirection, and the built EARTH
//! program, and draw node buffers from a [`Workspace`] pool.
//!
//! * [`PhasedEngine`] — irregular reductions with LHS indirection
//!   (`euler`, `moldyn`): full LightInspector machinery, on either
//!   backend, optionally under a [`RecoveryPolicy`].
//! * [`gather::GatherEngine`] — the `mvm` shape: the *gathered* vector
//!   rotates, the reduction array stays local; no buffers or second
//!   loop (§3's single-reference remark).
//! * [`seq::SeqEngine`] — the sequential reference executor
//!   (validation + the speedup denominator).
//! * [`baseline::IeEngine`] — the classic communicating
//!   inspector/executor comparator (owner-computes with ghost buffers)
//!   on the same simulator. The shared-memory comparators (atomics,
//!   replication) remain standalone native-only harnesses in
//!   [`baseline`].
//!
//! Every engine constructor accepts an [`ExecutionConfig`] (or a bare
//! backend config via `Into`), which bundles backend choice, fault
//! injection, the recovery ladder, and trace-sink selection. Runs
//! return a [`RunOutcome`] carrying values, stats, a
//! [`MetricsRegistry`](trace::MetricsRegistry), and — when tracing is
//! on — the structured event stream
//! ([`RunOutcome::timeline`] folds it into per-processor phase spans).
//!
//! ## Validation
//!
//! Every executor produces real values; tests check them against the
//! sequential reference. The simulator charges cycles through the
//! [`memsim`] cache model during a measuring sweep and replays per-phase
//! costs for subsequent identical sweeps.

pub mod baseline;
pub mod config;
pub mod engine;
pub mod gather;
pub mod kernel;
pub mod phased;
pub mod prepared;
pub mod seq;
pub mod strategy;
pub mod tuning;
pub(crate) mod vector;

pub use config::{BackendKind, ExecutionConfig, TraceConfig};
pub use engine::{
    EngineError, Provenance, RecoveryPolicy, RecoveryReport, ReductionEngine, RunOutcome,
};
pub use gather::{GatherEngine, GatherSpec, PreparedGather};
pub use kernel::EdgeKernel;
pub use lightinspector::{portion_stats, PlanStats};
pub use phased::{PhasedEngine, PhasedError, PhasedSpec, PreparedPhased};
pub use prepared::{PlanToken, Workspace};
pub use seq::{seq_gather_cycles, seq_reduction, PreparedSeq, SeqEngine, SeqResult};
pub use strategy::{AutoTuning, EngineChoice, LoopLayout, StrategyConfig, StrategyError};
pub use tuning::{SimdMode, TileChoice, Tuning};
pub use workloads::{distribute, Distribution};

/// Compare two reduction results element-wise with a tolerance that
/// accounts for reassociation of floating-point sums.
pub fn approx_eq(a: &[f64], b: &[f64], tol: f64) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}
