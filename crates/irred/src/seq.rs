//! Sequential reference executors.
//!
//! These serve two purposes: *validation* (every parallel executor's
//! output is checked against them) and the *speedup denominator* — the
//! paper times sequential versions on one i860XP, so we meter the
//! sequential loops through the same cache/cost model the simulator
//! uses, making `T_seq / T_par` meaningful.

use std::sync::Arc;

use earth_model::sim::SimConfig;
use earth_model::Meter;
use memsim::{AddressMap, MemModel, Region};
use workloads::SparseMatrix;

use crate::config::ExecutionConfig;
use crate::engine::{validate_phased_spec, EngineError, Provenance, ReductionEngine, RunOutcome};
use crate::kernel::EdgeKernel;
use crate::phased::PhasedSpec;
use crate::prepared::Workspace;
use crate::strategy::StrategyConfig;
use lightinspector::InspectError;

/// A [`Meter`] that charges a real [`MemModel`] — the sequential
/// equivalent of the simulator's metering sweep.
pub struct MemMeter {
    pub mem: MemModel,
    pub cycles: u64,
    flop_cycles: u64,
}

impl MemMeter {
    pub fn new(cfg: SimConfig) -> Self {
        MemMeter {
            mem: MemModel::new(cfg.mem),
            cycles: 0,
            flop_cycles: cfg.flop_cycles,
        }
    }
}

impl Meter for MemMeter {
    #[inline]
    fn load(&mut self, addr: u64) {
        self.cycles += self.mem.read(addr);
    }
    #[inline]
    fn store(&mut self, addr: u64) {
        self.cycles += self.mem.write(addr);
    }
    #[inline]
    fn flops(&mut self, n: u64) {
        self.cycles += n * self.flop_cycles;
    }
}

/// Result of a sequential run.
#[derive(Debug)]
pub struct SeqResult {
    pub x: Vec<Vec<f64>>,
    pub read: Vec<Vec<f64>>,
    /// Modeled cycles on one node of the simulated machine.
    pub cycles: u64,
    pub seconds: f64,
}

/// Execute the irregular reduction sequentially for `sweeps` time steps,
/// metering the first sweep and scaling (the access pattern repeats).
pub fn seq_reduction<K: EdgeKernel>(
    spec: &PhasedSpec<K>,
    sweeps: usize,
    cfg: SimConfig,
) -> SeqResult {
    seq_reduction_inner(spec, sweeps, cfg, None)
}

/// The shared loop behind [`seq_reduction`] and [`SeqEngine`]: when
/// `known_sweep0` carries a previously measured sweep cost, metering is
/// skipped entirely — the values are bit-identical either way because
/// the meter only accumulates cycles.
fn seq_reduction_inner<K: EdgeKernel>(
    spec: &PhasedSpec<K>,
    sweeps: usize,
    cfg: SimConfig,
    known_sweep0: Option<u64>,
) -> SeqResult {
    let n = spec.num_elements;
    let m = spec.kernel.num_refs();
    let r_arrays = spec.kernel.num_arrays();
    let n_read = spec.kernel.num_read_arrays();
    let e = spec.num_iterations();

    // Element-major interleaved storage (one struct of `r_arrays` /
    // `n_read` doubles per element) — the layout the cache model below
    // has always charged for, now also the layout the loop runs on.
    let mut x = vec![0.0f64; n * r_arrays];
    let mut read = spec.kernel.init_read();
    debug_assert_eq!(read.len(), n * n_read);

    let mut am = AddressMap::new(64);
    let x_reg: Region = am.alloc_f64(n * r_arrays);
    let read_reg: Region = am.alloc_f64(n * n_read.max(1));
    let ind_regs: Vec<Region> = (0..m).map(|_| am.alloc_u32(e.max(1))).collect();
    let edge_reg = am.alloc_f64(e.max(1));

    let mut meter = MemMeter::new(cfg);
    let mut out = vec![0.0f64; m * r_arrays];
    let mut elems = vec![0u32; m];
    let edge_reads = spec.kernel.edge_reads_per_iter();
    let node_reads = spec.kernel.node_reads_per_elem();
    let flops = spec.kernel.flops_per_iter();
    let mut sweep0_cost = 0u64;

    for sweep in 0..sweeps {
        let metered = sweep == 0 && known_sweep0.is_none();
        let before = meter.cycles;
        // Zero the reduction arrays.
        x.fill(0.0);
        if metered {
            for i in (0..n * r_arrays).step_by(4) {
                meter.store(x_reg.addr(i)); // one touch per few words ≈ stream
            }
        }
        // The reduction loop, in original iteration order.
        for i in 0..e {
            for (r, er) in elems.iter_mut().enumerate() {
                *er = spec.indirection[r][i];
            }
            if metered {
                for reg in ind_regs.iter() {
                    meter.load(reg.addr(i));
                }
                for _ in 0..edge_reads {
                    meter.load(edge_reg.addr(i));
                }
                if n_read > 0 {
                    for &el in &elems {
                        for w in 0..node_reads {
                            meter.load(read_reg.addr(el as usize * n_read + w % n_read));
                        }
                    }
                }
                meter.flops(flops);
            }
            out.fill(0.0);
            spec.kernel.contrib(&read, i, &elems, &mut out);
            for (r, &el) in elems.iter().enumerate() {
                let base = el as usize * r_arrays;
                for a in 0..r_arrays {
                    x[base + a] += out[r * r_arrays + a];
                    if metered {
                        meter.load(x_reg.addr(base + a));
                        meter.store(x_reg.addr(base + a));
                        meter.flops(1);
                    }
                }
            }
        }
        // Node-level update on final values.
        spec.kernel.post_sweep(&mut read, 0..n, &x);
        if metered {
            meter.flops(n as u64 * spec.kernel.post_flops_per_elem());
            sweep0_cost = meter.cycles - before;
        }
    }

    let sweep0_cost = known_sweep0.unwrap_or(sweep0_cost);
    let cycles = sweep0_cost * sweeps as u64;
    // De-interleave into the per-array shape the public result keeps.
    let mut x_out = vec![vec![0.0f64; n]; r_arrays];
    for (i, chunk) in x.chunks_exact(r_arrays.max(1)).enumerate().take(n) {
        for (a, &v) in chunk.iter().enumerate() {
            x_out[a][i] = v;
        }
    }
    let mut read_out = vec![vec![0.0f64; n]; n_read];
    for (i, chunk) in read.chunks_exact(n_read.max(1)).enumerate().take(n) {
        for (a, &v) in chunk.iter().enumerate() {
            read_out[a][i] = v;
        }
    }
    SeqResult {
        x: x_out,
        read: read_out,
        cycles,
        seconds: cfg.seconds(cycles),
    }
}

/// A prepared sequential run: validated spec plus the measured
/// first-sweep cost, so repeated executes skip metering (the access
/// pattern is a pure function of the plan).
pub struct PreparedSeq<K> {
    spec: PhasedSpec<K>,
    sweeps: usize,
    cfg: SimConfig,
    sweep0_cost: Option<u64>,
    executions: u64,
}

impl<K> std::fmt::Debug for PreparedSeq<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedSeq")
            .field("sweeps", &self.sweeps)
            .field("sweep0_cost", &self.sweep0_cost)
            .field("executions", &self.executions)
            .finish_non_exhaustive()
    }
}

impl<K: EdgeKernel> PreparedSeq<K> {
    pub fn executions(&self) -> u64 {
        self.executions
    }
}

/// The sequential reference executor as a [`ReductionEngine`] — the
/// validation oracle and the speedup denominator, behind the same
/// prepare/execute interface as the parallel engines.
#[derive(Debug, Clone, Copy, Default)]
pub struct SeqEngine {
    cfg: ExecutionConfig,
}

impl SeqEngine {
    /// The sequential engine always runs the simulator's cycle model;
    /// only `cfg.sim` matters, but it accepts a full [`ExecutionConfig`]
    /// (or a bare [`SimConfig`] via `Into`) like every other engine.
    pub fn new(cfg: impl Into<ExecutionConfig>) -> Self {
        SeqEngine { cfg: cfg.into() }
    }

    pub fn config(&self) -> &ExecutionConfig {
        &self.cfg
    }
}

impl<K: EdgeKernel> ReductionEngine<PhasedSpec<K>> for SeqEngine {
    type Prepared = PreparedSeq<K>;

    fn name(&self) -> &'static str {
        "seq"
    }

    fn prepare(
        &self,
        spec: &PhasedSpec<K>,
        strat: &StrategyConfig,
    ) -> Result<Self::Prepared, EngineError> {
        validate_phased_spec(spec)?;
        // The parallel engines range-check elements through the
        // inspector; the sequential loop indexes directly, so check here.
        for (r, arr) in spec.indirection.iter().enumerate() {
            for (i, &e) in arr.iter().enumerate() {
                if e as usize >= spec.num_elements {
                    return Err(EngineError::Invalid(InspectError::OutOfRange {
                        r,
                        iter: i,
                        elem: e,
                        num_elements: spec.num_elements,
                    }));
                }
            }
        }
        Ok(PreparedSeq {
            spec: spec.clone(),
            sweeps: strat.sweeps,
            cfg: self.cfg.sim,
            sweep0_cost: None,
            executions: 0,
        })
    }

    fn execute(
        &self,
        prepared: &mut Self::Prepared,
        _ws: &mut Workspace,
    ) -> Result<RunOutcome, EngineError> {
        let reused = prepared.executions > 0;
        prepared.executions += 1;
        let res = seq_reduction_inner(
            &prepared.spec,
            prepared.sweeps,
            prepared.cfg,
            prepared.sweep0_cost,
        );
        if prepared.sweep0_cost.is_none() && prepared.sweeps > 0 {
            prepared.sweep0_cost = Some(res.cycles / prepared.sweeps as u64);
        }
        let mut out = RunOutcome {
            values: res.x,
            read: res.read,
            time_cycles: res.cycles,
            seconds: res.seconds,
            provenance: Provenance {
                engine: "seq",
                backend: "sim",
                reused_plan: reused,
                executions: prepared.executions,
            },
            ..RunOutcome::default()
        };
        out.fill_metrics();
        Ok(out)
    }
}

/// Sequential sparse matrix–vector product, metered: returns `y` after
/// `sweeps` products plus the modeled cycles.
pub fn seq_gather_cycles(
    matrix: &Arc<SparseMatrix>,
    x: &[f64],
    sweeps: usize,
    cfg: SimConfig,
) -> (Vec<f64>, u64) {
    let mut am = AddressMap::new(64);
    let y_reg = am.alloc_f64(matrix.nrows);
    let x_reg = am.alloc_f64(matrix.ncols);
    let col_reg = am.alloc_u32(matrix.nnz());
    let val_reg = am.alloc_f64(matrix.nnz());
    let rp_reg = am.alloc(matrix.nrows + 1, 8);

    let mut meter = MemMeter::new(cfg);
    let mut y = vec![0.0f64; matrix.nrows];
    let mut sweep0 = 0u64;
    for sweep in 0..sweeps {
        let metered = sweep == 0;
        let before = meter.cycles;
        for (r, yr) in y.iter_mut().enumerate().take(matrix.nrows) {
            if metered {
                meter.load(rp_reg.addr(r));
            }
            let mut acc = 0.0;
            for nz in matrix.row_ptr[r] as usize..matrix.row_ptr[r + 1] as usize {
                let c = matrix.col_idx[nz] as usize;
                acc += matrix.values[nz] * x[c];
                if metered {
                    meter.load(col_reg.addr(nz));
                    meter.load(val_reg.addr(nz));
                    meter.load(x_reg.addr(c));
                    meter.flops(2);
                }
            }
            *yr = acc;
            if metered {
                meter.store(y_reg.addr(r));
            }
        }
        if metered {
            sweep0 = meter.cycles - before;
        }
    }
    (y, sweep0 * sweeps as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::WeightedPairKernel;

    fn spec() -> PhasedSpec<WeightedPairKernel> {
        PhasedSpec {
            kernel: Arc::new(WeightedPairKernel {
                weights: Arc::new(vec![1.0, 2.0, 3.0]),
            }),
            num_elements: 4,
            indirection: Arc::new(vec![vec![0, 1, 2], vec![3, 3, 0]]),
        }
    }

    #[test]
    fn seq_values_by_hand() {
        let r = seq_reduction(&spec(), 1, SimConfig::default());
        // X[e1] += w, X[e2] += 2w per iteration:
        // i0: X[0]+=1, X[3]+=2; i1: X[1]+=2, X[3]+=4; i2: X[2]+=3, X[0]+=6.
        assert_eq!(r.x[0], vec![7.0, 2.0, 3.0, 6.0]);
    }

    #[test]
    fn sweeps_scale_cycles_not_values() {
        let r1 = seq_reduction(&spec(), 1, SimConfig::default());
        let r3 = seq_reduction(&spec(), 3, SimConfig::default());
        // Values are re-zeroed each sweep: identical.
        assert_eq!(r1.x, r3.x);
        assert_eq!(r3.cycles, 3 * r1.cycles);
    }

    #[test]
    fn seq_engine_matches_function_and_reuses_cost() {
        let s = spec();
        let engine = SeqEngine::new(SimConfig::default());
        let strat = StrategyConfig::new(1, 1, workloads::Distribution::Block, 3);
        let mut prepared = engine.prepare(&s, &strat).unwrap();
        let mut ws = Workspace::new();
        let a = engine.execute(&mut prepared, &mut ws).unwrap();
        let b = engine.execute(&mut prepared, &mut ws).unwrap();
        let direct = seq_reduction(&s, 3, SimConfig::default());
        assert_eq!(a.values, direct.x);
        assert_eq!(b.values, direct.x, "cached-cost execute is bit-identical");
        assert_eq!(b.time_cycles, direct.cycles);
        assert!(b.provenance.reused_plan);
    }

    #[test]
    fn seq_engine_rejects_out_of_range() {
        let s = PhasedSpec {
            kernel: Arc::new(WeightedPairKernel {
                weights: Arc::new(vec![1.0]),
            }),
            num_elements: 2,
            indirection: Arc::new(vec![vec![0], vec![7]]),
        };
        let engine = SeqEngine::new(SimConfig::default());
        let strat = StrategyConfig::new(1, 1, workloads::Distribution::Block, 1);
        let err = ReductionEngine::<PhasedSpec<WeightedPairKernel>>::prepare(&engine, &s, &strat)
            .unwrap_err();
        assert!(matches!(err, EngineError::Invalid(_)));
    }

    #[test]
    fn gather_matches_spmv() {
        let m = Arc::new(SparseMatrix::random(40, 40, 300, 5));
        let x: Vec<f64> = (0..40).map(|i| i as f64 * 0.25).collect();
        let (y, cycles) = seq_gather_cycles(&m, &x, 2, SimConfig::default());
        let mut want = vec![0.0; 40];
        m.spmv(&x, &mut want);
        assert_eq!(y, want);
        assert!(cycles > 0);
    }

    #[test]
    fn scattered_kernel_costs_more_than_dense() {
        // Same size, scattered vs clustered indirection: cycles differ.
        let mk = |stride: usize| {
            let n = 20_000usize;
            let e = 30_000usize;
            let ia1: Vec<u32> = (0..e).map(|i| ((i * stride) % n) as u32).collect();
            let ia2: Vec<u32> = (0..e).map(|i| ((i * stride + 1) % n) as u32).collect();
            PhasedSpec {
                kernel: Arc::new(WeightedPairKernel {
                    weights: Arc::new(vec![1.0; e]),
                }),
                num_elements: n,
                indirection: Arc::new(vec![ia1, ia2]),
            }
        };
        let dense = seq_reduction(&mk(1), 1, SimConfig::default()).cycles;
        let scattered = seq_reduction(&mk(7919), 1, SimConfig::default()).cycles;
        assert!(scattered > dense, "{scattered} vs {dense}");
    }
}
