//! Phased execution of the `mvm` shape: gather-side rotation.
//!
//! In sparse matrix–vector multiply the *reduction* array `y` is indexed
//! by the loop variable — no indirection on the left-hand side — while
//! the vector `x` is gathered through the column indices. The paper
//! (§5's opening and §3) notes its execution strategy, memory
//! management, and synchronization still apply, but the LightInspector
//! machinery is not required: each processor owns a block of rows (and
//! `y` entries), the vector `x` rotates around the ring in `k·P`
//! portions, and during phase `p` the processor processes exactly those
//! of its nonzeros whose column lies in the resident portion. Bucketing
//! nonzeros by phase is the single-reference inspection
//! ([`lightinspector::inspect_single`] at the granularity of nonzeros).

use std::sync::Arc;

use earth_model::native::{run_native_with, NativeConfig, NativeCtx};
use earth_model::sim::{run_sim, SimConfig, SimCtx};
use earth_model::{
    mailbox_key, FiberCtx, FiberSpec, MachineProgram, Meter, NullMeter, RunStats, SlotId, Value,
};
use lightinspector::{InspectError, PhaseGeometry};
use memsim::{AddressMap, Region, StreamModel};
use workloads::{distribute, SparseMatrix};

use crate::phased::PhasedError;
use crate::strategy::StrategyConfig;

const TAG_XPORT: u32 = 3;

/// Problem description for the gather-rotation executor.
pub struct GatherSpec {
    pub matrix: Arc<SparseMatrix>,
    /// The input vector (replicated conceptually; only portions move).
    pub x: Arc<Vec<f64>>,
}

/// Result of a gather-rotation run.
#[derive(Debug)]
pub struct GatherResult {
    pub y: Vec<f64>,
    pub time_cycles: u64,
    pub seconds: f64,
    pub wall: std::time::Duration,
    pub stats: RunStats,
}

/// One nonzero, phase-bucketed: local row, column, value.
struct NodeRegions {
    rows: Region,
    cols: Region,
    vals: Region,
    x: Region,
    y: Region,
}

/// Node state for the gather executor.
pub struct GatherNode {
    proc: usize,
    geometry: PhaseGeometry,
    sweeps: usize,
    /// Rows owned by this node (global ids, ascending).
    rows: Vec<u32>,
    /// Per phase: parallel arrays of (local row, column, value).
    ph_rows: Vec<Vec<u32>>,
    ph_cols: Vec<Vec<u32>>,
    ph_vals: Vec<Vec<f64>>,
    /// Start offset of each phase in the concatenated nonzero order.
    phase_off: Vec<usize>,
    /// Local copy of x (portions become valid as they arrive).
    x: Vec<f64>,
    /// Local y block, indexed like `rows`.
    y: Vec<f64>,
    phase_cost: Vec<Option<u64>>,
    regions: NodeRegions,
    stream: StreamModel,
}

fn slot_of(abs: usize) -> SlotId {
    abs as SlotId
}

impl GatherNode {
    fn new(
        spec: &GatherSpec,
        strat: &StrategyConfig,
        proc: usize,
        rows: Vec<u32>,
        mem_cfg: memsim::MemConfig,
    ) -> Result<Self, PhasedError> {
        let geometry = PhaseGeometry::try_new(strat.procs, strat.k, spec.matrix.ncols)?;
        let kp = geometry.num_phases();
        let mut ph_rows = vec![Vec::new(); kp];
        let mut ph_cols = vec![Vec::new(); kp];
        let mut ph_vals = vec![Vec::new(); kp];
        let m = &spec.matrix;
        for (lr, &r) in rows.iter().enumerate() {
            for nz in m.row_ptr[r as usize] as usize..m.row_ptr[r as usize + 1] as usize {
                let c = m.col_idx[nz];
                let p = geometry.phase_of_portion_on(proc, geometry.portion_of(c as usize));
                ph_rows[p].push(lr as u32);
                ph_cols[p].push(c);
                ph_vals[p].push(m.values[nz]);
            }
        }
        let mut phase_off = Vec::with_capacity(kp);
        let mut off = 0;
        for rows in ph_rows.iter().take(kp) {
            phase_off.push(off);
            off += rows.len();
        }

        // Initially the node holds its k starting portions of x; for
        // simplicity (and because x never changes) we pre-fill the whole
        // local copy — timing still pays for every rotation transfer.
        let x = spec.x.as_ref().clone();
        let total_nnz = off;
        let mut am = AddressMap::new(64);
        let regions = NodeRegions {
            rows: am.alloc_u32(total_nnz.max(1)),
            cols: am.alloc_u32(total_nnz.max(1)),
            vals: am.alloc_f64(total_nnz.max(1)),
            x: am.alloc_f64(m.ncols),
            y: am.alloc_f64(rows.len().max(1)),
        };

        Ok(GatherNode {
            proc,
            geometry,
            sweeps: strat.sweeps,
            y: vec![0.0; rows.len()],
            rows,
            ph_rows,
            ph_cols,
            ph_vals,
            phase_off,
            x,
            phase_cost: vec![None; kp],
            regions,
            stream: StreamModel::new(mem_cfg),
        })
    }

    fn run_phase<C: FiberCtx<Self>>(s: &mut Self, t: usize, p: usize, ctx: &mut C) {
        let g = s.geometry;
        let kp = g.num_phases();
        let k = g.k();
        let portion = g.portion_owned_by(s.proc, p);
        let range = g.portion_range(portion);
        let abs = t * kp + p;

        // Zero y at each sweep start.
        if p == 0 {
            s.y.fill(0.0);
            if ctx.is_sim() && !s.y.is_empty() {
                ctx.charge(s.stream.stream(s.y.len() as u64, 8));
            }
        }

        // Receive the resident x portion (except the initially-held ones).
        if !(range.is_empty() || (t == 0 && p < k)) {
            let payload = ctx
                .recv(mailbox_key(TAG_XPORT, abs as u32))
                .expect("x portion must have arrived");
            let vals = payload.expect_f64s();
            // SU-deposited (split-phase block move): no EU copy charge;
            // first-touch misses are paid by the metered loop.
            s.x[range.clone()].copy_from_slice(vals);
        }

        // The gather-accumulate loop. Sweep 0 runs on a cold cache; the
        // steady-state cost is measured on sweep 1 and replayed after.
        if ctx.is_sim() {
            match s.phase_cost[p] {
                Some(c) => {
                    s.exec_loop(p, &mut NullMeter);
                    ctx.charge(c);
                }
                None => {
                    let before = ctx.charged();
                    let mut meter = earth_model::program::CtxMeter::<Self, C>::new(ctx);
                    s.exec_loop_metered(p, &mut meter);
                    let cost = ctx.charged() - before;
                    if t > 0 || s.sweeps == 1 {
                        s.phase_cost[p] = Some(cost);
                    }
                }
            }
        } else {
            s.exec_loop(p, &mut NullMeter);
        }

        // Forward the portion (x is immutable, so data flows every hop).
        let next_abs = abs + k;
        if next_abs < s.sweeps * kp {
            let dest = g.next_owner(s.proc);
            if range.is_empty() {
                ctx.sync(dest, slot_of(next_abs));
            } else {
                ctx.data_sync(
                    dest,
                    mailbox_key(TAG_XPORT, next_abs as u32),
                    Value::F64s(s.x[range.clone()].to_vec().into_boxed_slice()),
                    slot_of(next_abs),
                );
            }
        }

        // Chain to the next phase on this node.
        if abs + 1 < s.sweeps * kp {
            ctx.sync(s.proc, slot_of(abs + 1));
        }
    }

    fn exec_loop(&mut self, p: usize, meter: &mut NullMeter) {
        gather_loop(
            &self.ph_rows[p],
            &self.ph_cols[p],
            &self.ph_vals[p],
            &self.x,
            &mut self.y,
            &self.regions,
            self.phase_off[p],
            meter,
        );
    }

    fn exec_loop_metered<M: Meter>(&mut self, p: usize, meter: &mut M) {
        gather_loop(
            &self.ph_rows[p],
            &self.ph_cols[p],
            &self.ph_vals[p],
            &self.x,
            &mut self.y,
            &self.regions,
            self.phase_off[p],
            meter,
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn gather_loop<M: Meter>(
    rows: &[u32],
    cols: &[u32],
    vals: &[f64],
    x: &[f64],
    y: &mut [f64],
    regs: &NodeRegions,
    phase_off: usize,
    meter: &mut M,
) {
    for j in 0..rows.len() {
        let pos = phase_off + j;
        let (r, c, v) = (rows[j] as usize, cols[j] as usize, vals[j]);
        meter.load(regs.rows.addr(pos));
        meter.load(regs.cols.addr(pos));
        meter.load(regs.vals.addr(pos));
        meter.load(regs.x.addr(c));
        meter.load(regs.y.addr(r));
        y[r] += v * x[c];
        meter.store(regs.y.addr(r));
        meter.flops(2);
    }
}

/// The `mvm` phased executor.
pub struct PhasedGather;

impl PhasedGather {
    fn build<C: FiberCtx<GatherNode> + 'static>(
        spec: &GatherSpec,
        strat: &StrategyConfig,
        mem_cfg: memsim::MemConfig,
    ) -> Result<MachineProgram<GatherNode, C>, PhasedError> {
        if spec.x.len() != spec.matrix.ncols {
            return Err(PhasedError::Shape {
                what: "gather vector length (matrix.ncols)",
                expected: spec.matrix.ncols,
                got: spec.x.len(),
            });
        }
        for (nz, &c) in spec.matrix.col_idx.iter().enumerate() {
            if c as usize >= spec.matrix.ncols {
                return Err(PhasedError::Invalid(InspectError::OutOfRange {
                    r: 0,
                    iter: nz,
                    elem: c,
                    num_elements: spec.matrix.ncols,
                }));
            }
        }
        // ncols < k·P is legal: trailing x portions are empty and those
        // phases degenerate to bare synchronization.
        let rows = distribute(spec.matrix.nrows, strat.procs, strat.distribution);
        let kp = strat.phases_per_sweep();
        let mut prog = MachineProgram::new();
        for (proc, proc_rows) in rows.iter().enumerate().take(strat.procs) {
            let node = GatherNode::new(spec, strat, proc, proc_rows.clone(), mem_cfg)?;
            let id = prog.add_node(node);
            for t in 0..strat.sweeps {
                for p in 0..kp {
                    let mut count = 0u32;
                    if !(t == 0 && p == 0) {
                        count += 1; // chain
                    }
                    if !(t == 0 && p < strat.k) {
                        count += 1; // portion arrival
                    }
                    prog.node_mut(id).add_fiber(FiberSpec::new(
                        "mvm-phase",
                        count,
                        move |s: &mut GatherNode, ctx: &mut C| {
                            GatherNode::run_phase(s, t, p, ctx);
                        },
                    ));
                }
            }
        }
        Ok(prog)
    }

    fn collect(nrows: usize, nodes: Vec<GatherNode>) -> Vec<f64> {
        let mut y = vec![0.0f64; nrows];
        for node in nodes {
            for (lr, &r) in node.rows.iter().enumerate() {
                y[r as usize] = node.y[lr];
            }
        }
        y
    }

    /// Run on the discrete-event simulator.
    pub fn run_sim(spec: &GatherSpec, strat: &StrategyConfig, cfg: SimConfig) -> GatherResult {
        let prog = Self::build::<SimCtx<GatherNode>>(spec, strat, cfg.mem)
            .unwrap_or_else(|e| panic!("gather program build failed: {e}"));
        let report = run_sim(prog, cfg);
        assert_eq!(report.stats.unfired_fibers, 0);
        GatherResult {
            y: Self::collect(spec.matrix.nrows, report.states),
            time_cycles: report.time_cycles,
            seconds: report.seconds,
            wall: std::time::Duration::ZERO,
            stats: report.stats,
        }
    }

    /// Run on real OS threads. Like the phased executor, a starved
    /// machine is reported as a typed `Stalled` error, never as a
    /// silently short result.
    pub fn run_native(spec: &GatherSpec, strat: &StrategyConfig) -> Result<GatherResult, PhasedError> {
        Self::run_native_with(spec, strat, NativeConfig::default())
    }

    /// [`Self::run_native`] with an explicit backend configuration
    /// (watchdog deadline, fault plan).
    pub fn run_native_with(
        spec: &GatherSpec,
        strat: &StrategyConfig,
        cfg: NativeConfig,
    ) -> Result<GatherResult, PhasedError> {
        let prog = Self::build::<NativeCtx<GatherNode>>(spec, strat, memsim::MemConfig::i860xp())?;
        let cfg = NativeConfig {
            starved_is_error: true,
            ..cfg
        };
        let report = run_native_with(prog, cfg)?;
        Ok(GatherResult {
            y: Self::collect(spec.matrix.nrows, report.states),
            time_cycles: 0,
            seconds: 0.0,
            wall: report.wall,
            stats: report.stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::Distribution;

    fn spec(n: usize, nnz: usize, seed: u64) -> GatherSpec {
        let matrix = Arc::new(SparseMatrix::random(n, n, nnz, seed));
        let x = Arc::new((0..n).map(|i| (i % 17) as f64 * 0.5 + 1.0).collect::<Vec<_>>());
        GatherSpec { matrix, x }
    }

    fn reference(spec: &GatherSpec) -> Vec<f64> {
        let mut y = vec![0.0; spec.matrix.nrows];
        spec.matrix.spmv(&spec.x, &mut y);
        y
    }

    #[test]
    fn matches_spmv_2procs() {
        let s = spec(64, 600, 1);
        let r = PhasedGather::run_sim(
            &s,
            &StrategyConfig::new(2, 2, Distribution::Block, 3),
            SimConfig::default(),
        );
        assert!(crate::approx_eq(&r.y, &reference(&s), 1e-10));
    }

    #[test]
    fn matches_spmv_8procs_k4() {
        let s = spec(128, 2_000, 2);
        let r = PhasedGather::run_sim(
            &s,
            &StrategyConfig::new(8, 4, Distribution::Block, 2),
            SimConfig::default(),
        );
        assert!(crate::approx_eq(&r.y, &reference(&s), 1e-10));
    }

    #[test]
    fn native_matches_spmv() {
        let s = spec(64, 600, 3);
        let r = PhasedGather::run_native(&s, &StrategyConfig::new(4, 2, Distribution::Block, 2))
            .unwrap();
        assert!(crate::approx_eq(&r.y, &reference(&s), 1e-10));
    }

    #[test]
    fn k2_beats_k1_on_many_procs() {
        // Enough sweeps that the pipelined steady state (where k=2's
        // overlap pays) dominates ramp-up and the metering sweeps, and a
        // compute-to-transfer ratio inside the paper's regime (k=2's
        // per-phase compute must exceed one portion transfer, else only
        // k≥4 could hide it).
        let s = spec(4096, 200_000, 4);
        let t1 = PhasedGather::run_sim(
            &s,
            &StrategyConfig::new(16, 1, Distribution::Block, 12),
            SimConfig::default(),
        )
        .time_cycles;
        let t2 = PhasedGather::run_sim(
            &s,
            &StrategyConfig::new(16, 2, Distribution::Block, 12),
            SimConfig::default(),
        )
        .time_cycles;
        assert!(t2 < t1, "k=2 {t2} vs k=1 {t1}");
    }

    #[test]
    fn message_count_is_deterministic_function_of_shape() {
        // P procs, k, T sweeps: (T*kP - k) transfers per ring lane... in
        // total: each absolute phase beyond the first k on each node gets
        // one message/sync: P * (T*kP - k).
        let s = spec(256, 3_000, 5);
        let strat = StrategyConfig::new(4, 2, Distribution::Block, 2);
        let r = PhasedGather::run_sim(&s, &strat, SimConfig::default());
        let kp = strat.phases_per_sweep();
        let expected = strat.procs as u64 * (strat.sweeps * kp - strat.k) as u64;
        assert_eq!(r.stats.ops.messages, expected);
    }

    #[test]
    fn cyclic_rows_also_correct() {
        let s = spec(96, 900, 6);
        let r = PhasedGather::run_sim(
            &s,
            &StrategyConfig::new(3, 2, Distribution::Cyclic, 2),
            SimConfig::default(),
        );
        assert!(crate::approx_eq(&r.y, &reference(&s), 1e-10));
    }
}
