//! Phased execution of the `mvm` shape: gather-side rotation.
//!
//! In sparse matrix–vector multiply the *reduction* array `y` is indexed
//! by the loop variable — no indirection on the left-hand side — while
//! the vector `x` is gathered through the column indices. The paper
//! (§5's opening and §3) notes its execution strategy, memory
//! management, and synchronization still apply, but the LightInspector
//! machinery is not required: each processor owns a block of rows (and
//! `y` entries), the vector `x` rotates around the ring in `k·P`
//! portions, and during phase `p` the processor processes exactly those
//! of its nonzeros whose column lies in the resident portion. Bucketing
//! nonzeros by phase is the single-reference inspection
//! ([`lightinspector::inspect_single`] at the granularity of nonzeros).
//!
//! The phase bucketing depends only on the matrix structure, so a
//! [`PreparedGather`] is reused across input vectors: a CG iteration
//! swaps in the next `x` with [`PreparedGather::set_x`] and re-executes
//! the same plan — no re-bucketing, no program rebuild, and cached phase
//! costs stay valid (the access *pattern* is unchanged).

use std::sync::Arc;

use earth_model::native::{run_native_traced, NativeConfig, NativeCtx};
use earth_model::sim::{run_sim_traced, SimConfig, SimCtx};
use earth_model::{
    mailbox_key, FiberCtx, FiberTemplate, Meter, NullMeter, ProgramTemplate, SlotId, TraceSink,
    Value,
};
use lightinspector::PhaseGeometry;
use memsim::{AddressMap, Region, StreamModel};
use trace::TraceKind;
use workloads::{distribute, SparseMatrix};

use crate::config::{BackendKind, ExecutionConfig};
use crate::engine::{
    attempt_faults, run_recovery_ladder, validate_gather_spec, validate_gather_x, EngineError,
    Provenance, RecoveryPolicy, ReductionEngine, RunOutcome,
};
use crate::prepared::{PhaseCosts, PlanToken, Workspace};
use crate::strategy::StrategyConfig;

const TAG_XPORT: u32 = 3;

/// Problem description for the gather-rotation executor.
#[derive(Clone)]
pub struct GatherSpec {
    pub matrix: Arc<SparseMatrix>,
    /// The input vector (replicated conceptually; only portions move).
    pub x: Arc<Vec<f64>>,
}

struct NodeRegions {
    rows: Region,
    cols: Region,
    vals: Region,
    x: Region,
    y: Region,
}

/// The immutable, reusable part of one node: the phase-bucketed
/// nonzeros and the cache-model regions. Depends on the matrix and the
/// strategy only — never on the vector contents.
struct GatherNodePlan {
    geometry: PhaseGeometry,
    /// Rows owned by this node (global ids, ascending).
    rows: Vec<u32>,
    /// Per phase: parallel arrays of (local row, column, value).
    ph_rows: Vec<Vec<u32>>,
    ph_cols: Vec<Vec<u32>>,
    ph_vals: Vec<Vec<f64>>,
    /// Start offset of each phase in the concatenated nonzero order.
    phase_off: Vec<usize>,
    regions: NodeRegions,
}

impl GatherNodePlan {
    fn new(
        matrix: &SparseMatrix,
        geometry: PhaseGeometry,
        proc: usize,
        rows: Vec<u32>,
    ) -> GatherNodePlan {
        let kp = geometry.num_phases();
        let mut ph_rows = vec![Vec::new(); kp];
        let mut ph_cols = vec![Vec::new(); kp];
        let mut ph_vals = vec![Vec::new(); kp];
        for (lr, &r) in rows.iter().enumerate() {
            for nz in matrix.row_ptr[r as usize] as usize..matrix.row_ptr[r as usize + 1] as usize {
                let c = matrix.col_idx[nz];
                let p = geometry.phase_of_portion_on(proc, geometry.portion_of(c as usize));
                ph_rows[p].push(lr as u32);
                ph_cols[p].push(c);
                ph_vals[p].push(matrix.values[nz]);
            }
        }
        let mut phase_off = Vec::with_capacity(kp);
        let mut off = 0;
        for r in ph_rows.iter().take(kp) {
            phase_off.push(off);
            off += r.len();
        }

        let total_nnz = off;
        let mut am = AddressMap::new(64);
        let regions = NodeRegions {
            rows: am.alloc_u32(total_nnz.max(1)),
            cols: am.alloc_u32(total_nnz.max(1)),
            vals: am.alloc_f64(total_nnz.max(1)),
            x: am.alloc_f64(matrix.ncols),
            y: am.alloc_f64(rows.len().max(1)),
        };

        GatherNodePlan {
            geometry,
            rows,
            ph_rows,
            ph_cols,
            ph_vals,
            phase_off,
            regions,
        }
    }
}

/// Node state for the gather executor: the shared plan plus this
/// execute's mutable buffers.
pub struct GatherNode {
    proc: usize,
    sweeps: usize,
    data: Arc<GatherNodePlan>,
    /// Local copy of x (portions become valid as they arrive).
    x: Vec<f64>,
    /// Local y block, indexed like `data.rows`.
    y: Vec<f64>,
    /// Recycled portion-payload buffers (see the phased executor): the
    /// boxes received from the ring predecessor are reused for our own
    /// forwards, so the steady state allocates nothing per message.
    pool: Vec<Box<[f64]>>,
    phase_cost: Vec<Option<u64>>,
    stream: StreamModel,
}

/// Most pooled payload buffers a node retains.
const MAX_NODE_POOL: usize = 32;

fn slot_of(abs: usize) -> SlotId {
    abs as SlotId
}

impl GatherNode {
    fn run_phase<C: FiberCtx<Self>>(s: &mut Self, t: usize, p: usize, ctx: &mut C) {
        let g = s.data.geometry;
        let kp = g.num_phases();
        let k = g.k();
        let portion = g.portion_owned_by(s.proc, p);
        let range = g.portion_range(portion);
        let abs = t * kp + p;
        let tracing = ctx.trace_enabled();
        if tracing {
            ctx.trace(TraceKind::PhaseEnter {
                sweep: t as u32,
                phase: p as u32,
            });
            ctx.trace(TraceKind::CopyEnter {
                sweep: t as u32,
                phase: p as u32,
            });
        }

        // Zero y at each sweep start.
        if p == 0 {
            s.y.fill(0.0);
            if ctx.is_sim() && !s.y.is_empty() {
                ctx.charge(s.stream.stream(s.y.len() as u64, 8));
            }
        }

        // Receive the resident x portion (except the initially-held ones).
        if !(range.is_empty() || (t == 0 && p < k)) {
            let payload = ctx
                .recv(mailbox_key(TAG_XPORT, abs as u32))
                .expect("x portion must have arrived");
            let vals = payload.expect_f64s();
            // SU-deposited (split-phase block move): no EU copy charge;
            // first-touch misses are paid by the metered loop.
            s.x[range.clone()].copy_from_slice(vals);
            // Recycle the payload buffer for our own forwards.
            if let Value::F64s(b) = payload {
                if s.pool.len() < MAX_NODE_POOL {
                    s.pool.push(b);
                }
            }
        }
        if tracing {
            ctx.trace(TraceKind::CopyExit {
                sweep: t as u32,
                phase: p as u32,
            });
        }

        // The gather-accumulate loop. Sweep 0 runs on a cold cache; the
        // steady-state cost is measured on sweep 1 and replayed after.
        if ctx.is_sim() {
            match s.phase_cost[p] {
                Some(c) => {
                    s.exec_loop(p, &mut NullMeter);
                    ctx.charge(c);
                }
                None => {
                    let before = ctx.charged();
                    let mut meter = earth_model::program::CtxMeter::<Self, C>::new(ctx);
                    s.exec_loop_metered(p, &mut meter);
                    let cost = ctx.charged() - before;
                    if t > 0 || s.sweeps == 1 {
                        s.phase_cost[p] = Some(cost);
                    }
                }
            }
        } else {
            s.exec_loop(p, &mut NullMeter);
        }

        // Forward the portion (x is immutable, so data flows every hop).
        let next_abs = abs + k;
        if next_abs < s.sweeps * kp {
            let dest = g.next_owner(s.proc);
            if tracing {
                ctx.trace(TraceKind::PortionRotate {
                    portion: portion as u32,
                    to_node: dest as u32,
                });
            }
            if range.is_empty() {
                ctx.sync(dest, slot_of(next_abs));
            } else {
                // One contiguous copy into a recycled exact-length buffer
                // (portion sizes take at most two distinct values).
                let need = range.len();
                let mut payload = match s.pool.iter().position(|b| b.len() == need) {
                    Some(i) => s.pool.swap_remove(i),
                    None => vec![0.0f64; need].into_boxed_slice(),
                };
                payload.copy_from_slice(&s.x[range.clone()]);
                ctx.data_sync(
                    dest,
                    mailbox_key(TAG_XPORT, next_abs as u32),
                    Value::F64s(payload),
                    slot_of(next_abs),
                );
            }
        }

        // Chain to the next phase on this node.
        if abs + 1 < s.sweeps * kp {
            ctx.sync(s.proc, slot_of(abs + 1));
        }
        if tracing {
            ctx.trace(TraceKind::PhaseExit {
                sweep: t as u32,
                phase: p as u32,
            });
        }
    }

    fn exec_loop(&mut self, p: usize, meter: &mut NullMeter) {
        let d = &self.data;
        gather_loop(
            &d.ph_rows[p],
            &d.ph_cols[p],
            &d.ph_vals[p],
            &self.x,
            &mut self.y,
            &d.regions,
            d.phase_off[p],
            meter,
        );
    }

    fn exec_loop_metered<M: Meter>(&mut self, p: usize, meter: &mut M) {
        let d = &self.data;
        gather_loop(
            &d.ph_rows[p],
            &d.ph_cols[p],
            &d.ph_vals[p],
            &self.x,
            &mut self.y,
            &d.regions,
            d.phase_off[p],
            meter,
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn gather_loop<M: Meter>(
    rows: &[u32],
    cols: &[u32],
    vals: &[f64],
    x: &[f64],
    y: &mut [f64],
    regs: &NodeRegions,
    phase_off: usize,
    meter: &mut M,
) {
    for j in 0..rows.len() {
        let pos = phase_off + j;
        let (r, c, v) = (rows[j] as usize, cols[j] as usize, vals[j]);
        meter.load(regs.rows.addr(pos));
        meter.load(regs.cols.addr(pos));
        meter.load(regs.vals.addr(pos));
        meter.load(regs.x.addr(c));
        meter.load(regs.y.addr(r));
        y[r] += v * x[c];
        meter.store(regs.y.addr(r));
        meter.flops(2);
    }
}

enum GatherTemplate {
    Sim(ProgramTemplate<GatherNode, SimCtx<GatherNode>>),
    Native(ProgramTemplate<GatherNode, NativeCtx<GatherNode>>),
}

fn build_template<C: FiberCtx<GatherNode> + 'static>(
    strat: &StrategyConfig,
) -> ProgramTemplate<GatherNode, C> {
    let kp = strat.phases_per_sweep();
    let mut tmpl = ProgramTemplate::new();
    for _proc in 0..strat.procs {
        let id = tmpl.add_node();
        for t in 0..strat.sweeps {
            for p in 0..kp {
                let mut count = 0u32;
                if !(t == 0 && p == 0) {
                    count += 1; // chain
                }
                if !(t == 0 && p < strat.k) {
                    count += 1; // portion arrival
                }
                tmpl.node_mut(id).add_fiber(FiberTemplate::new(
                    "mvm-phase",
                    count,
                    move |s: &mut GatherNode, ctx: &mut C| {
                        GatherNode::run_phase(s, t, p, ctx);
                    },
                ));
            }
        }
    }
    tmpl
}

/// A fully prepared gather run: validated matrix, phase-bucketed
/// nonzeros per node, and the EARTH program template. The input vector
/// is *state* of the prepared run — swap it per execute with
/// [`Self::set_x`] (a CG iteration does exactly this) without touching
/// the plan.
pub struct PreparedGather {
    matrix: Arc<SparseMatrix>,
    strat: StrategyConfig,
    /// The vector the next execute multiplies by.
    x_current: Vec<f64>,
    node_data: Vec<Arc<GatherNodePlan>>,
    mem_cfg: memsim::MemConfig,
    template: GatherTemplate,
    token: PlanToken,
    executions: u64,
}

impl std::fmt::Debug for PreparedGather {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedGather")
            .field("strat", &self.strat)
            .field("token", &self.token)
            .field("executions", &self.executions)
            .finish_non_exhaustive()
    }
}

impl PreparedGather {
    fn new(
        spec: &GatherSpec,
        strat: &StrategyConfig,
        cfg: &ExecutionConfig,
    ) -> Result<Self, EngineError> {
        validate_gather_spec(&spec.matrix, spec.x.len())?;
        // ncols < k·P is legal: trailing x portions are empty and those
        // phases degenerate to bare synchronization.
        let geometry = PhaseGeometry::try_new(strat.procs, strat.k, spec.matrix.ncols)?;
        let rows = distribute(spec.matrix.nrows, strat.procs, strat.distribution);
        // Per-node phase bucketing only reads the shared matrix, so the
        // passes run in parallel on multi-core hosts; collecting in
        // processor order keeps the result identical to the serial build.
        let parallel = strat.procs > 1
            && std::thread::available_parallelism()
                .map(|n| n.get() > 1)
                .unwrap_or(false);
        let node_data: Vec<Arc<GatherNodePlan>> = if parallel {
            std::thread::scope(|scope| {
                let handles: Vec<_> = rows
                    .into_iter()
                    .enumerate()
                    .take(strat.procs)
                    .map(|(proc, proc_rows)| {
                        let matrix = &spec.matrix;
                        scope.spawn(move || {
                            Arc::new(GatherNodePlan::new(matrix, geometry, proc, proc_rows))
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("bucketing pass panicked"))
                    .collect()
            })
        } else {
            rows.into_iter()
                .enumerate()
                .take(strat.procs)
                .map(|(proc, proc_rows)| {
                    Arc::new(GatherNodePlan::new(&spec.matrix, geometry, proc, proc_rows))
                })
                .collect()
        };
        let (mem_cfg, template) = match cfg.backend {
            BackendKind::Sim => (cfg.sim.mem, GatherTemplate::Sim(build_template(strat))),
            BackendKind::Native => (
                memsim::MemConfig::i860xp(),
                GatherTemplate::Native(build_template(strat)),
            ),
        };
        Ok(PreparedGather {
            matrix: Arc::clone(&spec.matrix),
            strat: *strat,
            x_current: spec.x.as_ref().clone(),
            node_data,
            mem_cfg,
            template,
            token: PlanToken::fresh(),
            executions: 0,
        })
    }

    /// Replace the input vector for subsequent executes. The plan (and
    /// any cached phase costs — the access *pattern* is unchanged) stays
    /// valid.
    pub fn set_x(&mut self, x: &[f64]) -> Result<(), EngineError> {
        validate_gather_x(&self.matrix, x.len())?;
        self.x_current.copy_from_slice(x);
        Ok(())
    }

    /// The vector the next execute will multiply by.
    pub fn x(&self) -> &[f64] {
        &self.x_current
    }

    pub fn strategy(&self) -> &StrategyConfig {
        &self.strat
    }

    pub fn token(&self) -> PlanToken {
        self.token
    }

    pub fn executions(&self) -> u64 {
        self.executions
    }

    fn make_nodes(&self, ws: &mut Workspace, sim: bool) -> Vec<GatherNode> {
        let kp = self.strat.phases_per_sweep();
        let cached = if sim {
            ws.costs_for(self.token).cloned()
        } else {
            None
        };
        (0..self.strat.procs)
            .map(|proc| {
                let data = Arc::clone(&self.node_data[proc]);
                let mut x = ws.take_buffer(self.matrix.ncols);
                x.copy_from_slice(&self.x_current);
                let y = ws.take_buffer(data.rows.len());
                let phase_cost = cached
                    .as_ref()
                    .and_then(|c| c.get(proc).cloned())
                    .unwrap_or_else(|| vec![None; kp]);
                GatherNode {
                    proc,
                    sweeps: self.strat.sweeps,
                    data,
                    x,
                    y,
                    pool: Vec::new(),
                    phase_cost,
                    stream: StreamModel::new(self.mem_cfg),
                }
            })
            .collect()
    }

    /// Collect the global y, return buffers to the pool, and (for
    /// simulated runs) harvest measured phase costs.
    fn finish(&self, nodes: Vec<GatherNode>, ws: &mut Workspace, sim: bool) -> Vec<f64> {
        let mut y = vec![0.0f64; self.matrix.nrows];
        let mut harvest: PhaseCosts = Vec::with_capacity(if sim { nodes.len() } else { 0 });
        for node in nodes {
            for (lr, &r) in node.data.rows.iter().enumerate() {
                y[r as usize] = node.y[lr];
            }
            if sim {
                harvest.push(node.phase_cost);
            }
            ws.put_buffer(node.x);
            ws.put_buffer(node.y);
            for b in node.pool {
                ws.put_buffer(b.into_vec());
            }
        }
        if sim {
            ws.store_costs(self.token, harvest);
        }
        y
    }

    fn provenance(&self, backend: &'static str, reused: bool) -> Provenance {
        Provenance {
            engine: "gather",
            backend,
            reused_plan: reused,
            executions: self.executions,
        }
    }

    /// Sequential fallback: plain SpMV with the current vector.
    fn seq_fallback(&self) -> RunOutcome {
        let mut y = vec![0.0; self.matrix.nrows];
        self.matrix.spmv(&self.x_current, &mut y);
        RunOutcome {
            values: vec![y],
            ..RunOutcome::default()
        }
    }

    fn execute(
        &mut self,
        cfg: &ExecutionConfig,
        ws: &mut Workspace,
    ) -> Result<RunOutcome, EngineError> {
        let reused = self.executions > 0;
        self.executions += 1;
        let sink = cfg.trace.make_sink(self.strat.procs);
        match (&self.template, cfg.backend) {
            (GatherTemplate::Sim(tmpl), BackendKind::Sim) => {
                let nodes = self.make_nodes(ws, true);
                let prog = tmpl.instantiate(nodes);
                let report = run_sim_traced(prog, cfg.sim, Arc::clone(&sink));
                assert_eq!(report.stats.unfired_fibers, 0);
                let y = self.finish(report.states, ws, true);
                let mut out = RunOutcome {
                    values: vec![y],
                    time_cycles: report.time_cycles,
                    seconds: report.seconds,
                    stats: report.stats,
                    trace: report.trace,
                    provenance: self.provenance("sim", reused),
                    ..RunOutcome::default()
                };
                out.fill_metrics();
                out.record_trace_drops(sink.as_ref());
                Ok(out)
            }
            (GatherTemplate::Native(_), BackendKind::Native) => {
                let base = cfg.native;
                let mut out = match cfg.recovery {
                    None => self.native_attempt(base, &sink, ws)?,
                    Some(policy) => run_recovery_ladder(
                        policy,
                        sink.as_ref(),
                        |attempt| attempt_faults(base.faults, attempt).map(|f| f.seed),
                        |attempt| {
                            let mut c = base;
                            c.faults = attempt_faults(base.faults, attempt);
                            self.native_attempt(c, &sink, ws)
                        },
                        || self.seq_fallback(),
                    )?,
                };
                // The sink accumulates across retry attempts, so the
                // drained stream shows every rung, not just the winner.
                out.trace = sink.drain();
                out.provenance = self.provenance("native", reused);
                out.fill_metrics();
                out.record_trace_drops(sink.as_ref());
                Ok(out)
            }
            _ => Err(EngineError::Unsupported(
                "prepared run was built for the other backend",
            )),
        }
    }

    /// One native run from the prepared plan. Like the phased executor,
    /// a starved machine is reported as a typed `Stalled` error, never
    /// as a silently short result.
    fn native_attempt(
        &self,
        cfg: NativeConfig,
        sink: &Arc<dyn TraceSink>,
        ws: &mut Workspace,
    ) -> Result<RunOutcome, EngineError> {
        let GatherTemplate::Native(tmpl) = &self.template else {
            return Err(EngineError::Unsupported(
                "prepared run was built for the simulator",
            ));
        };
        let cfg = NativeConfig {
            starved_is_error: true,
            ..cfg
        };
        let nodes = self.make_nodes(ws, false);
        let prog = tmpl.instantiate(nodes);
        let report = run_native_traced(prog, cfg, Arc::clone(sink))?;
        let y = self.finish(report.states, ws, false);
        Ok(RunOutcome {
            values: vec![y],
            wall: report.wall,
            stats: report.stats,
            ..RunOutcome::default()
        })
    }
}

/// The `mvm` gather executor as a [`ReductionEngine`].
#[derive(Debug, Clone, Copy)]
pub struct GatherEngine {
    cfg: ExecutionConfig,
}

impl GatherEngine {
    /// The general constructor: any [`ExecutionConfig`] (or a bare
    /// `SimConfig`/`NativeConfig` via `Into`).
    pub fn new(cfg: impl Into<ExecutionConfig>) -> Self {
        GatherEngine { cfg: cfg.into() }
    }

    /// Run on the discrete-event simulator.
    pub fn sim(cfg: SimConfig) -> Self {
        Self::new(ExecutionConfig::sim(cfg))
    }

    /// Run on real OS threads.
    pub fn native(cfg: NativeConfig) -> Self {
        Self::new(ExecutionConfig::native(cfg))
    }

    /// Run natively under a [`RecoveryPolicy`]; the fallback is a plain
    /// sequential SpMV.
    pub fn recovering(cfg: NativeConfig, policy: RecoveryPolicy) -> Self {
        Self::new(ExecutionConfig::native(cfg).with_recovery(policy))
    }

    pub fn config(&self) -> &ExecutionConfig {
        &self.cfg
    }
}

impl ReductionEngine<GatherSpec> for GatherEngine {
    type Prepared = PreparedGather;

    fn name(&self) -> &'static str {
        "gather"
    }

    fn prepare(
        &self,
        spec: &GatherSpec,
        strat: &StrategyConfig,
    ) -> Result<Self::Prepared, EngineError> {
        PreparedGather::new(spec, strat, &self.cfg)
    }

    fn execute(
        &self,
        prepared: &mut Self::Prepared,
        ws: &mut Workspace,
    ) -> Result<RunOutcome, EngineError> {
        prepared.execute(&self.cfg, ws)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::Distribution;

    fn spec(n: usize, nnz: usize, seed: u64) -> GatherSpec {
        let matrix = Arc::new(SparseMatrix::random(n, n, nnz, seed));
        let x = Arc::new(
            (0..n)
                .map(|i| (i % 17) as f64 * 0.5 + 1.0)
                .collect::<Vec<_>>(),
        );
        GatherSpec { matrix, x }
    }

    fn reference(spec: &GatherSpec) -> Vec<f64> {
        let mut y = vec![0.0; spec.matrix.nrows];
        spec.matrix.spmv(&spec.x, &mut y);
        y
    }

    fn run_sim_engine(s: &GatherSpec, strat: &StrategyConfig) -> RunOutcome {
        GatherEngine::sim(SimConfig::default())
            .run(s, strat)
            .unwrap()
    }

    #[test]
    fn matches_spmv_2procs() {
        let s = spec(64, 600, 1);
        let r = run_sim_engine(&s, &StrategyConfig::new(2, 2, Distribution::Block, 3));
        assert!(crate::approx_eq(&r.values[0], &reference(&s), 1e-10));
    }

    #[test]
    fn matches_spmv_8procs_k4() {
        let s = spec(128, 2_000, 2);
        let r = run_sim_engine(&s, &StrategyConfig::new(8, 4, Distribution::Block, 2));
        assert!(crate::approx_eq(&r.values[0], &reference(&s), 1e-10));
    }

    #[test]
    fn native_matches_spmv() {
        let s = spec(64, 600, 3);
        let r = GatherEngine::native(NativeConfig::default())
            .run(&s, &StrategyConfig::new(4, 2, Distribution::Block, 2))
            .unwrap();
        assert!(crate::approx_eq(&r.values[0], &reference(&s), 1e-10));
    }

    #[test]
    fn k2_beats_k1_on_many_procs() {
        // Enough sweeps that the pipelined steady state (where k=2's
        // overlap pays) dominates ramp-up and the metering sweeps, and a
        // compute-to-transfer ratio inside the paper's regime (k=2's
        // per-phase compute must exceed one portion transfer, else only
        // k≥4 could hide it).
        let s = spec(4096, 200_000, 4);
        let t1 =
            run_sim_engine(&s, &StrategyConfig::new(16, 1, Distribution::Block, 12)).time_cycles;
        let t2 =
            run_sim_engine(&s, &StrategyConfig::new(16, 2, Distribution::Block, 12)).time_cycles;
        assert!(t2 < t1, "k=2 {t2} vs k=1 {t1}");
    }

    #[test]
    fn message_count_is_deterministic_function_of_shape() {
        // P procs, k, T sweeps: each absolute phase beyond the first k on
        // each node gets one message/sync: P * (T*kP - k).
        let s = spec(256, 3_000, 5);
        let strat = StrategyConfig::new(4, 2, Distribution::Block, 2);
        let r = run_sim_engine(&s, &strat);
        let kp = strat.phases_per_sweep();
        let expected = strat.procs as u64 * (strat.sweeps * kp - strat.k) as u64;
        assert_eq!(r.stats.ops.messages, expected);
    }

    #[test]
    fn cyclic_rows_also_correct() {
        let s = spec(96, 900, 6);
        let r = run_sim_engine(&s, &StrategyConfig::new(3, 2, Distribution::Cyclic, 2));
        assert!(crate::approx_eq(&r.values[0], &reference(&s), 1e-10));
    }

    #[test]
    fn prepared_set_x_matches_fresh_runs() {
        let s = spec(96, 1_200, 7);
        let strat = StrategyConfig::new(4, 2, Distribution::Block, 1);
        let engine = GatherEngine::sim(SimConfig::default());
        let mut prepared = engine.prepare(&s, &strat).unwrap();
        let mut ws = Workspace::new();
        for round in 0..3u64 {
            let x2: Vec<f64> = (0..96)
                .map(|i| ((i + round as usize) % 13) as f64)
                .collect();
            prepared.set_x(&x2).unwrap();
            let out = engine.execute(&mut prepared, &mut ws).unwrap();
            let fresh = GatherSpec {
                matrix: Arc::clone(&s.matrix),
                x: Arc::new(x2),
            };
            let mut y = vec![0.0; 96];
            fresh.matrix.spmv(&fresh.x, &mut y);
            assert!(crate::approx_eq(&out.values[0], &y, 1e-10));
        }
        assert_eq!(prepared.executions(), 3);
        assert!(ws.pooled_buffers() > 0);
    }

    #[test]
    fn set_x_rejects_wrong_length() {
        let s = spec(64, 600, 8);
        let strat = StrategyConfig::new(2, 2, Distribution::Block, 1);
        let engine = GatherEngine::sim(SimConfig::default());
        let mut prepared = engine.prepare(&s, &strat).unwrap();
        assert!(matches!(
            prepared.set_x(&[1.0; 5]).unwrap_err(),
            EngineError::Shape { .. }
        ));
    }

    #[test]
    fn traced_gather_run_emits_phase_events() {
        let s = spec(64, 600, 9);
        let strat = StrategyConfig::new(2, 2, Distribution::Block, 2);
        let r = GatherEngine::new(ExecutionConfig::sim(SimConfig::default()).traced())
            .run(&s, &strat)
            .unwrap();
        assert!(crate::approx_eq(&r.values[0], &reference(&s), 1e-10));
        let enters = r
            .trace
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::PhaseEnter { .. }))
            .count();
        // 2 procs × 2 sweeps × (k·P = 4) phases.
        assert_eq!(enters, 2 * 2 * 4);
        assert_eq!(r.metrics().counter("messages"), Some(r.stats.ops.messages));
    }
}
