//! The classic communicating inspector/executor baseline.
//!
//! This is the family of schemes the paper positions itself against
//! (Saltz-style runtime preprocessing [21, 25] as used by Agrawal &
//! Saltz on the Intel Paragon): elements are *partitioned* across
//! processors (we use RCB or block ownership), iterations follow the
//! owner of their first reference, and a **communicating inspector**
//! builds, per processor, the ghost element table and the exchange
//! schedule. Every sweep then runs
//!
//! 1. *compute*: accumulate into owned elements and local ghost buffers
//!    (renumbered contiguously — the locality advantage partitioning
//!    buys);
//! 2. *scatter*: one message per neighbour carrying the ghost
//!    contributions;
//! 3. *fold*: add received contributions into owned elements.
//!
//! Contrast with the LightInspector: the inspector here must exchange
//! ghost-id lists (communication), its cost grows with partition
//! quality, and adaptivity forces full re-inspection — exactly the
//! overheads §1 and §5.4.3 discuss.
//!
//! Restricted to kernels without read-state updates (the euler-style
//! comparison of §5.4.3); a gather step for replicated reads would be
//! symmetric to the scatter implemented here.

use std::collections::HashMap;
use std::sync::Arc;

use earth_model::sim::{run_sim, SimConfig, SimCtx};
use earth_model::{mailbox_key, FiberCtx, FiberSpec, MachineProgram, Meter, NullMeter, RunStats, SlotId, Value};
use memsim::{AddressMap, Region};

use crate::kernel::EdgeKernel;
use crate::phased::PhasedSpec;

const TAG_SCATTER: u32 = 9;

/// Result of an inspector/executor run.
#[derive(Debug)]
pub struct IeResult {
    pub x: Vec<Vec<f64>>,
    /// Cycles of the executor (sweep loop) portion.
    pub time_cycles: u64,
    pub seconds: f64,
    /// Modeled cycles of the communicating inspector (run once).
    pub inspector_cycles: u64,
    /// Ghost elements per processor — the partition-quality signature
    /// that drives this scheme's communication volume.
    pub ghost_counts: Vec<usize>,
    pub stats: RunStats,
}

struct IeNode<K> {
    proc: usize,
    sweeps: usize,
    kernel: Arc<K>,
    /// Owned global elements, ascending; local id = position.
    owned: Vec<u32>,
    /// Ghost global elements, ascending; local id = owned.len() + pos.
    ghosts: Vec<u32>,
    /// Per local iteration: global iteration id.
    giters: Vec<u32>,
    /// Per local iteration × ref: local (renumbered) element index.
    local_refs: Vec<u32>,
    /// Original global element ids, m-interleaved (for the kernel).
    elems: Vec<u32>,
    /// Neighbours this node sends ghost contributions to, with the ghost
    /// local ids grouped per neighbour.
    send_to: Vec<(usize, Vec<u32>)>,
    /// Number of neighbours that send to this node.
    in_degree: usize,
    /// For each in-neighbour, the local ids its contributions fold into
    /// (same order as the sender's ghost list).
    fold_targets: HashMap<usize, Vec<u32>>,
    x: Vec<Vec<f64>>,
    out: Vec<f64>,
    sweep_cost: Option<u64>,
    regs: IeRegions,
    results: Vec<(u32, Vec<f64>)>,
}

struct IeRegions {
    /// AoS region over owned+ghost elements × arrays.
    x: Region,
    ind: Region,
    edge: Region,
}

fn compute_slot(t: usize) -> SlotId {
    (2 * t) as SlotId
}
fn fold_slot(t: usize) -> SlotId {
    (2 * t + 1) as SlotId
}

impl<K: EdgeKernel> IeNode<K> {
    fn run_compute<C: FiberCtx<Self>>(s: &mut Self, t: usize, ctx: &mut C) {
        let r_arrays = s.x.len();
        for xa in &mut s.x {
            xa.fill(0.0);
        }
        // The reduction loop over renumbered local data.
        if ctx.is_sim() {
            match s.sweep_cost {
                Some(c) => {
                    s.exec(&mut NullMeter);
                    ctx.charge(c);
                }
                None => {
                    let before = ctx.charged();
                    let mut meter = earth_model::program::CtxMeter::<Self, C>::new(ctx);
                    s.exec_metered(&mut meter);
                    s.sweep_cost = Some(ctx.charged() - before);
                }
            }
        } else {
            s.exec(&mut NullMeter);
        }
        // Scatter ghost contributions.
        let nowned = s.owned.len();
        for (dest, ghost_ids) in &s.send_to {
            let mut payload = Vec::with_capacity(ghost_ids.len() * r_arrays);
            for xa in &s.x {
                for &g in ghost_ids {
                    payload.push(xa[nowned + g as usize]);
                }
            }
            ctx.data_sync(
                *dest,
                mailbox_key(TAG_SCATTER, (t * 64 + s.proc) as u32),
                Value::F64s(payload.into_boxed_slice()),
                fold_slot(t),
            );
        }
        // Enable the local fold.
        ctx.sync(s.proc, fold_slot(t));
    }

    fn run_fold<C: FiberCtx<Self>>(s: &mut Self, t: usize, ctx: &mut C) {
        let r_arrays = s.x.len();
        // Fold every neighbour's contributions, in ascending source
        // order — hash-map order would reassociate the float adds
        // differently on every run.
        let mut folds: Vec<usize> = s.fold_targets.keys().copied().collect();
        folds.sort_unstable();
        for src in folds {
            let payload = ctx
                .recv(mailbox_key(TAG_SCATTER, (t * 64 + src) as u32))
                .expect("scatter payload present");
            let vals = payload.expect_f64s();
            let targets = &s.fold_targets[&src];
            debug_assert_eq!(vals.len(), targets.len() * r_arrays);
            for (a, xa) in s.x.iter_mut().enumerate() {
                for (j, &lt) in targets.iter().enumerate() {
                    xa[lt as usize] += vals[a * targets.len() + j];
                }
            }
            if ctx.is_sim() {
                // Fold cost: stream read + scattered add.
                ctx.charge(vals.len() as u64 * 6);
            }
        }
        if t + 1 < s.sweeps {
            ctx.sync(s.proc, compute_slot(t + 1));
        } else {
            // Keep final owned values.
            for (li, &ge) in s.owned.iter().enumerate() {
                let vals: Vec<f64> = s.x.iter().map(|xa| xa[li]).collect();
                s.results.push((ge, vals));
            }
        }
    }

    fn exec(&mut self, meter: &mut NullMeter) {
        ie_loop(
            &*self.kernel,
            &mut self.x,
            &self.giters,
            &self.local_refs,
            &self.elems,
            &mut self.out,
            &self.regs,
            meter,
        );
    }

    fn exec_metered<M: Meter>(&mut self, meter: &mut M) {
        ie_loop(
            &*self.kernel,
            &mut self.x,
            &self.giters,
            &self.local_refs,
            &self.elems,
            &mut self.out,
            &self.regs,
            meter,
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn ie_loop<K: EdgeKernel, M: Meter>(
    kernel: &K,
    x: &mut [Vec<f64>],
    giters: &[u32],
    local_refs: &[u32],
    elems: &[u32],
    out: &mut [f64],
    regs: &IeRegions,
    meter: &mut M,
) {
    let m = kernel.num_refs();
    let r_arrays = x.len();
    let read: &[Vec<f64>] = &[];
    let edge_reads = kernel.edge_reads_per_iter();
    let flops = kernel.flops_per_iter();
    for (j, &gi) in giters.iter().enumerate() {
        meter.load(regs.ind.addr(j));
        for _ in 0..edge_reads {
            meter.load(regs.edge.addr(j));
        }
        out.fill(0.0);
        kernel.contrib(read, gi as usize, &elems[j * m..(j + 1) * m], out);
        meter.flops(flops);
        for r in 0..m {
            let tgt = local_refs[j * m + r] as usize;
            for (a, xa) in x.iter_mut().enumerate() {
                xa[tgt] += out[r * r_arrays + a];
                meter.load(regs.x.addr(tgt * r_arrays + a));
                meter.store(regs.x.addr(tgt * r_arrays + a));
                meter.flops(1);
            }
        }
    }
}

/// The baseline runner.
pub struct InspectorExecutor;

impl InspectorExecutor {
    /// Run with the given element ownership (`owners[e]` = processor that
    /// owns element `e`, values `< procs`). Returns results plus modeled
    /// inspector cost.
    pub fn run_sim<K: EdgeKernel>(
        spec: &PhasedSpec<K>,
        owners: &[u32],
        procs: usize,
        sweeps: usize,
        cfg: SimConfig,
    ) -> IeResult {
        assert!(!spec.kernel.updates_read_state(), "IE baseline: static reads only");
        assert!(procs <= 64, "scatter keying assumes ≤64 processors");
        assert_eq!(owners.len(), spec.num_elements);
        let m = spec.kernel.num_refs();
        let e_total = spec.num_iterations();

        // --- host-side inspection (mirrored into modeled cycles below) ---
        let mut owned: Vec<Vec<u32>> = vec![Vec::new(); procs];
        for (e, &o) in owners.iter().enumerate() {
            owned[o as usize].push(e as u32);
        }
        let mut iters_of: Vec<Vec<u32>> = vec![Vec::new(); procs];
        for i in 0..e_total {
            let o = owners[spec.indirection[0][i] as usize];
            iters_of[o as usize].push(i as u32);
        }

        // Per node: ghosts, local renumbering, exchange schedule.
        let mut nodes: Vec<IeNode<K>> = Vec::with_capacity(procs);
        let mut ghost_requests: Vec<HashMap<usize, Vec<u32>>> = vec![HashMap::new(); procs];
        let mut inspector_cycles_max = 0u64;
        for q in 0..procs {
            let mut local_id: HashMap<u32, u32> = HashMap::with_capacity(owned[q].len() * 2);
            for (li, &ge) in owned[q].iter().enumerate() {
                local_id.insert(ge, li as u32);
            }
            let mut ghosts: Vec<u32> = Vec::new();
            let mut giters = Vec::with_capacity(iters_of[q].len());
            let mut local_refs = Vec::with_capacity(iters_of[q].len() * m);
            let mut elems = Vec::with_capacity(iters_of[q].len() * m);
            let nowned = owned[q].len() as u32;
            for &gi in &iters_of[q] {
                giters.push(gi);
                for r in 0..m {
                    let ge = spec.indirection[r][gi as usize];
                    elems.push(ge);
                    let li = *local_id.entry(ge).or_insert_with(|| {
                        ghosts.push(ge);
                        nowned + ghosts.len() as u32 - 1
                    });
                    local_refs.push(li);
                }
            }
            // Exchange schedule: ghosts grouped by their owner.
            let mut send_to: HashMap<usize, Vec<u32>> = HashMap::new();
            for (gpos, &ge) in ghosts.iter().enumerate() {
                send_to
                    .entry(owners[ge as usize] as usize)
                    .or_default()
                    .push(gpos as u32);
            }
            let mut send_vec: Vec<(usize, Vec<u32>)> = send_to.into_iter().collect();
            send_vec.sort_by_key(|(d, _)| *d);
            for (dest, gl) in &send_vec {
                ghost_requests[*dest].insert(q, gl.iter().map(|&g| ghosts[g as usize]).collect());
            }

            // Inspector cost model: translate every reference through a
            // hash (≈12 cycles), plus one ghost-list message round per
            // neighbour (charged on the network below via message count —
            // we fold the endpoint processing here).
            let insp = (iters_of[q].len() * m) as u64 * 12
                + ghosts.len() as u64 * 20
                + send_vec.len() as u64 * cfg.net_latency_cycles * 2;
            inspector_cycles_max = inspector_cycles_max.max(insp);

            let mut am = AddressMap::new(64);
            let r_arrays = spec.kernel.num_arrays();
            let xl = owned[q].len() + ghosts.len();
            let regs = IeRegions {
                x: am.alloc_f64(xl.max(1) * r_arrays),
                ind: am.alloc_u32(iters_of[q].len().max(1)),
                edge: am.alloc_f64(iters_of[q].len().max(1)),
            };
            nodes.push(IeNode {
                proc: q,
                sweeps,
                kernel: Arc::clone(&spec.kernel),
                owned: owned[q].clone(),
                ghosts,
                giters,
                local_refs,
                elems,
                send_to: send_vec,
                in_degree: 0,
                fold_targets: HashMap::new(),
                x: vec![vec![0.0; xl]; r_arrays],
                out: vec![0.0; m * r_arrays],
                sweep_cost: None,
                regs,
                results: Vec::new(),
            });
        }
        // Resolve fold targets: global ghost ids -> owner-local ids.
        for q in 0..procs {
            let reqs = std::mem::take(&mut ghost_requests[q]);
            let map: HashMap<u32, u32> = nodes[q]
                .owned
                .iter()
                .enumerate()
                .map(|(li, &ge)| (ge, li as u32))
                .collect();
            for (src, ges) in reqs {
                let targets: Vec<u32> = ges.iter().map(|ge| map[ge]).collect();
                nodes[q].fold_targets.insert(src, targets);
                nodes[q].in_degree += 1;
            }
        }

        // --- build the sweep-loop program --------------------------------
        let mut prog: MachineProgram<IeNode<K>, SimCtx<IeNode<K>>> = MachineProgram::new();
        for node in nodes {
            let in_deg = node.in_degree as u32;
            let id = prog.add_node(node);
            for t in 0..sweeps {
                let compute_count = u32::from(t > 0);
                prog.node_mut(id).add_fiber(FiberSpec::new(
                    "ie-compute",
                    compute_count,
                    move |s: &mut IeNode<K>, ctx: &mut SimCtx<IeNode<K>>| {
                        IeNode::run_compute(s, t, ctx);
                    },
                ));
                prog.node_mut(id).add_fiber(FiberSpec::new(
                    "ie-fold",
                    in_deg + 1,
                    move |s: &mut IeNode<K>, ctx: &mut SimCtx<IeNode<K>>| {
                        IeNode::run_fold(s, t, ctx);
                    },
                ));
            }
        }
        let report = run_sim(prog, cfg);
        assert_eq!(report.stats.unfired_fibers, 0);

        let r_arrays = spec.kernel.num_arrays();
        let mut x = vec![vec![0.0f64; spec.num_elements]; r_arrays];
        let mut ghost_counts = Vec::with_capacity(report.states.len());
        for node in report.states {
            ghost_counts.push(node.ghosts.len());
            for (ge, vals) in node.results {
                for (a, v) in vals.into_iter().enumerate() {
                    x[a][ge as usize] = v;
                }
            }
        }
        IeResult {
            x,
            time_cycles: report.time_cycles,
            seconds: report.seconds,
            inspector_cycles: inspector_cycles_max,
            ghost_counts,
            stats: report.stats,
        }
    }

    /// Modeled sequential cost of the *partitioning* step the paper's
    /// comparators pay (and the phased strategy avoids): an RCB-style
    /// `O(n log n · c)` pass plus data redistribution of every element
    /// and iteration.
    pub fn partitioning_cycles(num_elements: usize, num_iterations: usize, cfg: &SimConfig) -> u64 {
        let n = num_elements as u64;
        let e = num_iterations as u64;
        let logn = 64 - n.leading_zeros() as u64;
        n * logn * 14 + (n + e) * cfg.mem.miss_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::WeightedPairKernel;
    use crate::seq::seq_reduction;

    fn spec(n: usize, e: usize, seed: u64) -> PhasedSpec<WeightedPairKernel> {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        PhasedSpec {
            kernel: Arc::new(WeightedPairKernel {
                weights: Arc::new((0..e).map(|_| (next() % 100) as f64 / 7.0).collect()),
            }),
            num_elements: n,
            indirection: Arc::new(vec![
                (0..e).map(|_| (next() % n as u64) as u32).collect(),
                (0..e).map(|_| (next() % n as u64) as u32).collect(),
            ]),
        }
    }

    fn block_owners(n: usize, procs: usize) -> Vec<u32> {
        (0..n).map(|e| (e * procs / n) as u32).collect()
    }

    #[test]
    fn matches_sequential_block_partition() {
        let s = spec(64, 500, 1);
        let seq = seq_reduction(&s, 2, SimConfig::default());
        let r = InspectorExecutor::run_sim(&s, &block_owners(64, 4), 4, 2, SimConfig::default());
        assert!(crate::approx_eq(&r.x[0], &seq.x[0], 1e-9));
        assert!(r.inspector_cycles > 0);
    }

    #[test]
    fn matches_sequential_single_proc() {
        let s = spec(32, 200, 2);
        let seq = seq_reduction(&s, 1, SimConfig::default());
        let r = InspectorExecutor::run_sim(&s, &[0; 32], 1, 1, SimConfig::default());
        assert!(crate::approx_eq(&r.x[0], &seq.x[0], 1e-9));
        // No neighbours → no scatter messages.
        assert_eq!(r.stats.ops.messages, 0);
    }

    #[test]
    fn ghost_traffic_depends_on_partition_quality() {
        // A clustered indirection under block ownership has few ghosts; a
        // scrambled one has many. The phased strategy's traffic would be
        // identical in both cases — this baseline's is not.
        let n = 256;
        let e = 2_000;
        let clustered = PhasedSpec {
            kernel: Arc::new(WeightedPairKernel {
                weights: Arc::new(vec![1.0; e]),
            }),
            num_elements: n,
            indirection: Arc::new(vec![
                (0..e).map(|i| ((i / 8) % n) as u32).collect(),
                (0..e).map(|i| ((i / 8 + 1) % n) as u32).collect(),
            ]),
        };
        let scrambled = spec(n, e, 7);
        let owners = block_owners(n, 4);
        let a = InspectorExecutor::run_sim(&clustered, &owners, 4, 2, SimConfig::default());
        let b = InspectorExecutor::run_sim(&scrambled, &owners, 4, 2, SimConfig::default());
        assert!(
            b.stats.ops.bytes > 2 * a.stats.ops.bytes,
            "scrambled {} vs clustered {}",
            b.stats.ops.bytes,
            a.stats.ops.bytes
        );
    }

    #[test]
    fn partitioning_cost_is_nontrivial() {
        let c = InspectorExecutor::partitioning_cycles(10_000, 60_000, &SimConfig::default());
        assert!(c > 1_000_000);
    }
}
