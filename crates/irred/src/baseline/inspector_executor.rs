//! The classic communicating inspector/executor baseline.
//!
//! This is the family of schemes the paper positions itself against
//! (Saltz-style runtime preprocessing [21, 25] as used by Agrawal &
//! Saltz on the Intel Paragon): elements are *partitioned* across
//! processors (we use RCB or block ownership), iterations follow the
//! owner of their first reference, and a **communicating inspector**
//! builds, per processor, the ghost element table and the exchange
//! schedule. Every sweep then runs
//!
//! 1. *compute*: accumulate into owned elements and local ghost buffers
//!    (renumbered contiguously — the locality advantage partitioning
//!    buys);
//! 2. *scatter*: one message per neighbour carrying the ghost
//!    contributions;
//! 3. *fold*: add received contributions into owned elements.
//!
//! Contrast with the LightInspector: the inspector here must exchange
//! ghost-id lists (communication), its cost grows with partition
//! quality, and adaptivity forces full re-inspection — exactly the
//! overheads §1 and §5.4.3 discuss. Under the engine API the inspection
//! happens once in `prepare`; re-executing a [`PreparedIe`] reuses the
//! ghost tables and exchange schedule (valid because this baseline is
//! restricted to static meshes anyway).
//!
//! Restricted to kernels without read-state updates (the euler-style
//! comparison of §5.4.3); a gather step for replicated reads would be
//! symmetric to the scatter implemented here. The engine reports these
//! limits as [`EngineError::Unsupported`].

use std::collections::HashMap;
use std::sync::Arc;

use earth_model::sim::{run_sim_traced, SimConfig, SimCtx};
use earth_model::{
    mailbox_key, FiberCtx, FiberTemplate, Meter, NullMeter, ProgramTemplate, SlotId, Value,
};
use memsim::{AddressMap, Region};

use crate::config::ExecutionConfig;
use crate::engine::{validate_phased_spec, EngineError, Provenance, ReductionEngine, RunOutcome};
use crate::kernel::EdgeKernel;
use crate::phased::PhasedSpec;
use crate::prepared::{PhaseCosts, PlanToken, Workspace};
use crate::strategy::StrategyConfig;

const TAG_SCATTER: u32 = 9;

/// The immutable per-node product of the communicating inspector:
/// ownership, renumbering, ghost tables, and the exchange schedule.
struct IeNodePlan {
    proc: usize,
    /// Owned global elements, ascending; local id = position.
    owned: Vec<u32>,
    /// Ghost global elements, ascending; local id = owned.len() + pos.
    ghosts: Vec<u32>,
    /// Per local iteration: global iteration id.
    giters: Vec<u32>,
    /// Per local iteration × ref: local (renumbered) element index.
    local_refs: Vec<u32>,
    /// Original global element ids, m-interleaved (for the kernel).
    elems: Vec<u32>,
    /// Neighbours this node sends ghost contributions to, with the ghost
    /// local ids grouped per neighbour.
    send_to: Vec<(usize, Vec<u32>)>,
    /// Number of neighbours that send to this node.
    in_degree: usize,
    /// For each in-neighbour, the local ids its contributions fold into
    /// (same order as the sender's ghost list).
    fold_targets: HashMap<usize, Vec<u32>>,
    regs: IeRegions,
}

struct IeNode<K> {
    sweeps: usize,
    kernel: Arc<K>,
    plan: Arc<IeNodePlan>,
    x: Vec<Vec<f64>>,
    out: Vec<f64>,
    sweep_cost: Option<u64>,
    results: Vec<(u32, Vec<f64>)>,
}

struct IeRegions {
    /// AoS region over owned+ghost elements × arrays.
    x: Region,
    ind: Region,
    edge: Region,
}

fn compute_slot(t: usize) -> SlotId {
    (2 * t) as SlotId
}
fn fold_slot(t: usize) -> SlotId {
    (2 * t + 1) as SlotId
}

impl<K: EdgeKernel> IeNode<K> {
    fn run_compute<C: FiberCtx<Self>>(s: &mut Self, t: usize, ctx: &mut C) {
        let r_arrays = s.x.len();
        for xa in &mut s.x {
            xa.fill(0.0);
        }
        // The reduction loop over renumbered local data.
        if ctx.is_sim() {
            match s.sweep_cost {
                Some(c) => {
                    s.exec(&mut NullMeter);
                    ctx.charge(c);
                }
                None => {
                    let before = ctx.charged();
                    let mut meter = earth_model::program::CtxMeter::<Self, C>::new(ctx);
                    s.exec_metered(&mut meter);
                    s.sweep_cost = Some(ctx.charged() - before);
                }
            }
        } else {
            s.exec(&mut NullMeter);
        }
        // Scatter ghost contributions.
        let nowned = s.plan.owned.len();
        for (dest, ghost_ids) in &s.plan.send_to {
            let mut payload = Vec::with_capacity(ghost_ids.len() * r_arrays);
            for xa in &s.x {
                for &g in ghost_ids {
                    payload.push(xa[nowned + g as usize]);
                }
            }
            ctx.data_sync(
                *dest,
                mailbox_key(TAG_SCATTER, (t * 64 + s.plan.proc) as u32),
                Value::F64s(payload.into_boxed_slice()),
                fold_slot(t),
            );
        }
        // Enable the local fold.
        ctx.sync(s.plan.proc, fold_slot(t));
    }

    fn run_fold<C: FiberCtx<Self>>(s: &mut Self, t: usize, ctx: &mut C) {
        let r_arrays = s.x.len();
        // Fold every neighbour's contributions, in ascending source
        // order — hash-map order would reassociate the float adds
        // differently on every run.
        let mut folds: Vec<usize> = s.plan.fold_targets.keys().copied().collect();
        folds.sort_unstable();
        for src in folds {
            let payload = ctx
                .recv(mailbox_key(TAG_SCATTER, (t * 64 + src) as u32))
                .expect("scatter payload present");
            let vals = payload.expect_f64s();
            let targets = &s.plan.fold_targets[&src];
            debug_assert_eq!(vals.len(), targets.len() * r_arrays);
            for (a, xa) in s.x.iter_mut().enumerate() {
                for (j, &lt) in targets.iter().enumerate() {
                    xa[lt as usize] += vals[a * targets.len() + j];
                }
            }
            if ctx.is_sim() {
                // Fold cost: stream read + scattered add.
                ctx.charge(vals.len() as u64 * 6);
            }
        }
        if t + 1 < s.sweeps {
            ctx.sync(s.plan.proc, compute_slot(t + 1));
        } else {
            // Keep final owned values.
            for (li, &ge) in s.plan.owned.iter().enumerate() {
                let vals: Vec<f64> = s.x.iter().map(|xa| xa[li]).collect();
                s.results.push((ge, vals));
            }
        }
    }

    fn exec(&mut self, meter: &mut NullMeter) {
        let p = &self.plan;
        ie_loop(
            &*self.kernel,
            &mut self.x,
            &p.giters,
            &p.local_refs,
            &p.elems,
            &mut self.out,
            &p.regs,
            meter,
        );
    }

    fn exec_metered<M: Meter>(&mut self, meter: &mut M) {
        let p = &self.plan;
        ie_loop(
            &*self.kernel,
            &mut self.x,
            &p.giters,
            &p.local_refs,
            &p.elems,
            &mut self.out,
            &p.regs,
            meter,
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn ie_loop<K: EdgeKernel, M: Meter>(
    kernel: &K,
    x: &mut [Vec<f64>],
    giters: &[u32],
    local_refs: &[u32],
    elems: &[u32],
    out: &mut [f64],
    regs: &IeRegions,
    meter: &mut M,
) {
    let m = kernel.num_refs();
    let r_arrays = x.len();
    let read: &[f64] = &[];
    let edge_reads = kernel.edge_reads_per_iter();
    let flops = kernel.flops_per_iter();
    for (j, &gi) in giters.iter().enumerate() {
        meter.load(regs.ind.addr(j));
        for _ in 0..edge_reads {
            meter.load(regs.edge.addr(j));
        }
        out.fill(0.0);
        kernel.contrib(read, gi as usize, &elems[j * m..(j + 1) * m], out);
        meter.flops(flops);
        for r in 0..m {
            let tgt = local_refs[j * m + r] as usize;
            for (a, xa) in x.iter_mut().enumerate() {
                xa[tgt] += out[r * r_arrays + a];
                meter.load(regs.x.addr(tgt * r_arrays + a));
                meter.store(regs.x.addr(tgt * r_arrays + a));
                meter.flops(1);
            }
        }
    }
}

/// Block ownership: element `e` belongs to processor `e·P / n` — the
/// default partition when the caller supplies none.
pub fn block_owners(num_elements: usize, procs: usize) -> Vec<u32> {
    (0..num_elements)
        .map(|e| (e * procs / num_elements) as u32)
        .collect()
}

/// A fully prepared inspector/executor run: the communicating
/// inspector's per-node output (ghost tables, renumbering, exchange
/// schedule) plus the sweep-loop program template.
pub struct PreparedIe<K> {
    kernel: Arc<K>,
    num_elements: usize,
    sweeps: usize,
    node_plans: Vec<Arc<IeNodePlan>>,
    inspector_cycles: u64,
    template: ProgramTemplate<IeNode<K>, SimCtx<IeNode<K>>>,
    token: PlanToken,
    executions: u64,
}

impl<K> std::fmt::Debug for PreparedIe<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedIe")
            .field("num_elements", &self.num_elements)
            .field("sweeps", &self.sweeps)
            .field("inspector_cycles", &self.inspector_cycles)
            .field("executions", &self.executions)
            .finish_non_exhaustive()
    }
}

impl<K: EdgeKernel> PreparedIe<K> {
    /// Modeled cycles of the communicating inspector (paid once, at
    /// prepare time — the cost §5.4.3 compares against).
    pub fn inspector_cycles(&self) -> u64 {
        self.inspector_cycles
    }

    /// Ghost elements per processor — the partition-quality signature.
    pub fn ghost_counts(&self) -> Vec<usize> {
        self.node_plans.iter().map(|p| p.ghosts.len()).collect()
    }

    pub fn executions(&self) -> u64 {
        self.executions
    }

    fn make_nodes(&self, ws: &mut Workspace) -> Vec<IeNode<K>> {
        let r_arrays = self.kernel.num_arrays();
        let m = self.kernel.num_refs();
        let cached = ws.costs_for(self.token).cloned();
        self.node_plans
            .iter()
            .enumerate()
            .map(|(q, plan)| {
                let xl = plan.owned.len() + plan.ghosts.len();
                let x: Vec<Vec<f64>> = (0..r_arrays).map(|_| ws.take_buffer(xl)).collect();
                let sweep_cost = cached
                    .as_ref()
                    .and_then(|c| c.get(q))
                    .and_then(|v| v.first().copied())
                    .flatten();
                IeNode {
                    sweeps: self.sweeps,
                    kernel: Arc::clone(&self.kernel),
                    plan: Arc::clone(plan),
                    x,
                    out: vec![0.0; m * r_arrays],
                    sweep_cost,
                    results: Vec::new(),
                }
            })
            .collect()
    }

    fn finish(&self, nodes: Vec<IeNode<K>>, ws: &mut Workspace) -> Vec<Vec<f64>> {
        let r_arrays = self.kernel.num_arrays();
        let mut x = vec![vec![0.0f64; self.num_elements]; r_arrays];
        let mut harvest: PhaseCosts = Vec::with_capacity(nodes.len());
        for node in nodes {
            for (ge, vals) in node.results {
                for (a, v) in vals.into_iter().enumerate() {
                    x[a][ge as usize] = v;
                }
            }
            harvest.push(vec![node.sweep_cost]);
            for xa in node.x {
                ws.put_buffer(xa);
            }
        }
        ws.store_costs(self.token, harvest);
        x
    }
}

/// The inspector/executor baseline as a [`ReductionEngine`]. Simulator
/// only; kernels that update read state and machines beyond 64
/// processors are rejected as [`EngineError::Unsupported`]. Ownership
/// defaults to [`block_owners`]; supply a partition with
/// [`Self::with_owners`] (e.g. RCB output) to study partition quality.
#[derive(Clone)]
pub struct IeEngine {
    cfg: ExecutionConfig,
    owners: Option<Arc<Vec<u32>>>,
}

impl IeEngine {
    /// This baseline is simulator-only; only `cfg.sim` and `cfg.trace`
    /// are consulted.
    pub fn new(cfg: impl Into<ExecutionConfig>) -> Self {
        IeEngine {
            cfg: cfg.into(),
            owners: None,
        }
    }

    pub fn sim(cfg: SimConfig) -> Self {
        IeEngine::new(cfg)
    }

    /// Use an explicit element partition (`owners[e]` = processor that
    /// owns element `e`, values `< procs`).
    pub fn with_owners(cfg: impl Into<ExecutionConfig>, owners: Arc<Vec<u32>>) -> Self {
        IeEngine {
            cfg: cfg.into(),
            owners: Some(owners),
        }
    }

    pub fn config(&self) -> &ExecutionConfig {
        &self.cfg
    }
}

impl<K: EdgeKernel> ReductionEngine<PhasedSpec<K>> for IeEngine {
    type Prepared = PreparedIe<K>;

    fn name(&self) -> &'static str {
        "inspector-executor"
    }

    fn prepare(
        &self,
        spec: &PhasedSpec<K>,
        strat: &StrategyConfig,
    ) -> Result<Self::Prepared, EngineError> {
        validate_phased_spec(spec)?;
        if spec.kernel.updates_read_state() {
            return Err(EngineError::Unsupported(
                "IE baseline handles static reads only",
            ));
        }
        let procs = strat.procs;
        if procs > 64 {
            return Err(EngineError::Unsupported(
                "IE baseline scatter keying assumes <= 64 processors",
            ));
        }
        let owners_vec;
        let owners: &[u32] = match &self.owners {
            Some(o) => {
                if o.len() != spec.num_elements {
                    return Err(EngineError::Shape {
                        what: "owners length (num_elements)",
                        expected: spec.num_elements,
                        got: o.len(),
                    });
                }
                o
            }
            None => {
                owners_vec = block_owners(spec.num_elements, procs);
                &owners_vec
            }
        };
        let sweeps = strat.sweeps;
        let cfg = &self.cfg.sim;
        let m = spec.kernel.num_refs();
        let e_total = spec.num_iterations();

        // --- the communicating inspector (modeled in cycles below) -------
        let mut owned: Vec<Vec<u32>> = vec![Vec::new(); procs];
        for (e, &o) in owners.iter().enumerate() {
            owned[o as usize].push(e as u32);
        }
        let mut iters_of: Vec<Vec<u32>> = vec![Vec::new(); procs];
        for i in 0..e_total {
            let o = owners[spec.indirection[0][i] as usize];
            iters_of[o as usize].push(i as u32);
        }

        // Per node: ghosts, local renumbering, exchange schedule.
        let mut plans: Vec<IeNodePlan> = Vec::with_capacity(procs);
        let mut ghost_requests: Vec<HashMap<usize, Vec<u32>>> = vec![HashMap::new(); procs];
        let mut inspector_cycles_max = 0u64;
        for q in 0..procs {
            let mut local_id: HashMap<u32, u32> = HashMap::with_capacity(owned[q].len() * 2);
            for (li, &ge) in owned[q].iter().enumerate() {
                local_id.insert(ge, li as u32);
            }
            let mut ghosts: Vec<u32> = Vec::new();
            let mut giters = Vec::with_capacity(iters_of[q].len());
            let mut local_refs = Vec::with_capacity(iters_of[q].len() * m);
            let mut elems = Vec::with_capacity(iters_of[q].len() * m);
            let nowned = owned[q].len() as u32;
            for &gi in &iters_of[q] {
                giters.push(gi);
                for r in 0..m {
                    let ge = spec.indirection[r][gi as usize];
                    if ge as usize >= spec.num_elements {
                        return Err(EngineError::Invalid(
                            lightinspector::InspectError::OutOfRange {
                                r,
                                iter: gi as usize,
                                elem: ge,
                                num_elements: spec.num_elements,
                            },
                        ));
                    }
                    elems.push(ge);
                    let li = *local_id.entry(ge).or_insert_with(|| {
                        ghosts.push(ge);
                        nowned + ghosts.len() as u32 - 1
                    });
                    local_refs.push(li);
                }
            }
            // Exchange schedule: ghosts grouped by their owner.
            let mut send_to: HashMap<usize, Vec<u32>> = HashMap::new();
            for (gpos, &ge) in ghosts.iter().enumerate() {
                send_to
                    .entry(owners[ge as usize] as usize)
                    .or_default()
                    .push(gpos as u32);
            }
            let mut send_vec: Vec<(usize, Vec<u32>)> = send_to.into_iter().collect();
            send_vec.sort_by_key(|(d, _)| *d);
            for (dest, gl) in &send_vec {
                ghost_requests[*dest].insert(q, gl.iter().map(|&g| ghosts[g as usize]).collect());
            }

            // Inspector cost model: translate every reference through a
            // hash (≈12 cycles), plus one ghost-list message round per
            // neighbour (charged on the network below via message count —
            // we fold the endpoint processing here).
            let insp = (iters_of[q].len() * m) as u64 * 12
                + ghosts.len() as u64 * 20
                + send_vec.len() as u64 * cfg.net_latency_cycles * 2;
            inspector_cycles_max = inspector_cycles_max.max(insp);

            let mut am = AddressMap::new(64);
            let r_arrays = spec.kernel.num_arrays();
            let xl = owned[q].len() + ghosts.len();
            let regs = IeRegions {
                x: am.alloc_f64(xl.max(1) * r_arrays),
                ind: am.alloc_u32(iters_of[q].len().max(1)),
                edge: am.alloc_f64(iters_of[q].len().max(1)),
            };
            plans.push(IeNodePlan {
                proc: q,
                owned: owned[q].clone(),
                ghosts,
                giters,
                local_refs,
                elems,
                send_to: send_vec,
                in_degree: 0,
                fold_targets: HashMap::new(),
                regs,
            });
        }
        // Resolve fold targets: global ghost ids -> owner-local ids.
        for q in 0..procs {
            let reqs = std::mem::take(&mut ghost_requests[q]);
            let map: HashMap<u32, u32> = plans[q]
                .owned
                .iter()
                .enumerate()
                .map(|(li, &ge)| (ge, li as u32))
                .collect();
            for (src, ges) in reqs {
                let targets: Vec<u32> = ges.iter().map(|ge| map[ge]).collect();
                plans[q].fold_targets.insert(src, targets);
                plans[q].in_degree += 1;
            }
        }

        // --- the sweep-loop program template ------------------------------
        let mut template: ProgramTemplate<IeNode<K>, SimCtx<IeNode<K>>> = ProgramTemplate::new();
        for plan in &plans {
            let in_deg = plan.in_degree as u32;
            let id = template.add_node();
            for t in 0..sweeps {
                let compute_count = u32::from(t > 0);
                template.node_mut(id).add_fiber(FiberTemplate::new(
                    "ie-compute",
                    compute_count,
                    move |s: &mut IeNode<K>, ctx: &mut SimCtx<IeNode<K>>| {
                        IeNode::run_compute(s, t, ctx);
                    },
                ));
                template.node_mut(id).add_fiber(FiberTemplate::new(
                    "ie-fold",
                    in_deg + 1,
                    move |s: &mut IeNode<K>, ctx: &mut SimCtx<IeNode<K>>| {
                        IeNode::run_fold(s, t, ctx);
                    },
                ));
            }
        }

        Ok(PreparedIe {
            kernel: Arc::clone(&spec.kernel),
            num_elements: spec.num_elements,
            sweeps,
            node_plans: plans.into_iter().map(Arc::new).collect(),
            inspector_cycles: inspector_cycles_max,
            template,
            token: PlanToken::fresh(),
            executions: 0,
        })
    }

    fn execute(
        &self,
        prepared: &mut Self::Prepared,
        ws: &mut Workspace,
    ) -> Result<RunOutcome, EngineError> {
        let reused = prepared.executions > 0;
        prepared.executions += 1;
        let nodes = prepared.make_nodes(ws);
        let prog = prepared.template.instantiate(nodes);
        let sink = self.cfg.trace.make_sink(prepared.node_plans.len());
        let report = run_sim_traced(prog, self.cfg.sim, Arc::clone(&sink));
        assert_eq!(report.stats.unfired_fibers, 0);
        let values = prepared.finish(report.states, ws);
        let mut out = RunOutcome {
            values,
            time_cycles: report.time_cycles,
            seconds: report.seconds,
            stats: report.stats,
            trace: report.trace,
            provenance: Provenance {
                engine: "inspector-executor",
                backend: "sim",
                reused_plan: reused,
                executions: prepared.executions,
            },
            ..RunOutcome::default()
        };
        out.fill_metrics();
        out.record_trace_drops(sink.as_ref());
        Ok(out)
    }
}

/// Cost models shared by the partitioned-baseline comparisons.
pub struct InspectorExecutor;

impl InspectorExecutor {
    /// Modeled sequential cost of the *partitioning* step the paper's
    /// comparators pay (and the phased strategy avoids): an RCB-style
    /// `O(n log n · c)` pass plus data redistribution of every element
    /// and iteration.
    pub fn partitioning_cycles(num_elements: usize, num_iterations: usize, cfg: &SimConfig) -> u64 {
        let n = num_elements as u64;
        let e = num_iterations as u64;
        let logn = 64 - n.leading_zeros() as u64;
        n * logn * 14 + (n + e) * cfg.mem.miss_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::WeightedPairKernel;
    use crate::seq::seq_reduction;
    use workloads::Distribution;

    fn spec(n: usize, e: usize, seed: u64) -> PhasedSpec<WeightedPairKernel> {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        PhasedSpec {
            kernel: Arc::new(WeightedPairKernel {
                weights: Arc::new((0..e).map(|_| (next() % 100) as f64 / 7.0).collect()),
            }),
            num_elements: n,
            indirection: Arc::new(vec![
                (0..e).map(|_| (next() % n as u64) as u32).collect(),
                (0..e).map(|_| (next() % n as u64) as u32).collect(),
            ]),
        }
    }

    fn run_ie(
        s: &PhasedSpec<WeightedPairKernel>,
        procs: usize,
        sweeps: usize,
    ) -> (RunOutcome, u64) {
        let engine = IeEngine::sim(SimConfig::default());
        let strat = StrategyConfig::new(procs, 1, Distribution::Block, sweeps);
        let mut prepared = engine.prepare(s, &strat).unwrap();
        let mut ws = Workspace::new();
        let out = engine.execute(&mut prepared, &mut ws).unwrap();
        (out, prepared.inspector_cycles())
    }

    #[test]
    fn matches_sequential_block_partition() {
        let s = spec(64, 500, 1);
        let seq = seq_reduction(&s, 2, SimConfig::default());
        let (r, insp) = run_ie(&s, 4, 2);
        assert!(crate::approx_eq(&r.values[0], &seq.x[0], 1e-9));
        assert!(insp > 0);
    }

    #[test]
    fn matches_sequential_single_proc() {
        let s = spec(32, 200, 2);
        let seq = seq_reduction(&s, 1, SimConfig::default());
        let (r, _) = run_ie(&s, 1, 1);
        assert!(crate::approx_eq(&r.values[0], &seq.x[0], 1e-9));
        // No neighbours → no scatter messages.
        assert_eq!(r.stats.ops.messages, 0);
    }

    #[test]
    fn ghost_traffic_depends_on_partition_quality() {
        // A clustered indirection under block ownership has few ghosts; a
        // scrambled one has many. The phased strategy's traffic would be
        // identical in both cases — this baseline's is not.
        let n = 256;
        let e = 2_000;
        let clustered = PhasedSpec {
            kernel: Arc::new(WeightedPairKernel {
                weights: Arc::new(vec![1.0; e]),
            }),
            num_elements: n,
            indirection: Arc::new(vec![
                (0..e).map(|i| ((i / 8) % n) as u32).collect(),
                (0..e).map(|i| ((i / 8 + 1) % n) as u32).collect(),
            ]),
        };
        let scrambled = spec(n, e, 7);
        let (a, _) = run_ie(&clustered, 4, 2);
        let (b, _) = run_ie(&scrambled, 4, 2);
        assert!(
            b.stats.ops.bytes > 2 * a.stats.ops.bytes,
            "scrambled {} vs clustered {}",
            b.stats.ops.bytes,
            a.stats.ops.bytes
        );
    }

    #[test]
    fn prepared_reuse_is_bit_identical() {
        let s = spec(96, 800, 3);
        let engine = IeEngine::sim(SimConfig::default());
        let strat = StrategyConfig::new(4, 1, Distribution::Block, 2);
        let mut prepared = engine.prepare(&s, &strat).unwrap();
        let mut ws = Workspace::new();
        let first = engine.execute(&mut prepared, &mut ws).unwrap();
        let again = engine.execute(&mut prepared, &mut ws).unwrap();
        assert_eq!(first.values, again.values);
        assert!(again.provenance.reused_plan);
    }

    #[test]
    fn unsupported_cases_are_typed_errors() {
        let s = spec(32, 100, 4);
        let engine = IeEngine::sim(SimConfig::default());
        let strat = StrategyConfig::new(65, 1, Distribution::Block, 1);
        assert!(matches!(
            engine.prepare(&s, &strat).unwrap_err(),
            EngineError::Unsupported(_)
        ));
    }

    #[test]
    fn explicit_owners_match_sequential() {
        let s = spec(48, 300, 5);
        let seq = seq_reduction(&s, 1, SimConfig::default());
        let owners = Arc::new(block_owners(48, 3));
        let engine = IeEngine::with_owners(SimConfig::default(), owners);
        let strat = StrategyConfig::new(3, 1, Distribution::Block, 1);
        let mut prepared = engine.prepare(&s, &strat).unwrap();
        let mut ws = Workspace::new();
        let r = engine.execute(&mut prepared, &mut ws).unwrap();
        assert!(crate::approx_eq(&r.values[0], &seq.x[0], 1e-9));
        assert!(prepared.inspector_cycles() > 0);
    }

    #[test]
    fn traced_ie_run_populates_trace_and_metrics() {
        let s = spec(64, 500, 6);
        let engine = IeEngine::new(ExecutionConfig::default().traced());
        let strat = StrategyConfig::new(4, 1, Distribution::Block, 2);
        let mut prepared = engine.prepare(&s, &strat).unwrap();
        let mut ws = Workspace::new();
        let out = engine.execute(&mut prepared, &mut ws).unwrap();
        assert!(!out.trace.is_empty());
        assert_eq!(
            out.metrics().counter("messages"),
            Some(out.stats.ops.messages)
        );
    }

    #[test]
    fn partitioning_cost_is_nontrivial() {
        let c = InspectorExecutor::partitioning_cycles(10_000, 60_000, &SimConfig::default());
        assert!(c > 1_000_000);
    }
}
