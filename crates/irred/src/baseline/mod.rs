//! Comparator strategies.
//!
//! * [`inspector_executor`] — the classic communicating
//!   inspector/executor (owner-computes with ghost buffers, à la Saltz),
//!   run on the same simulator; the paper's §5.4.3 compares its relative
//!   speedups against this family of schemes (the Agrawal–Saltz Paragon
//!   results).
//! * [`shared`] — shared-memory reduction strategies on the *native*
//!   backend (atomic updates; per-thread replication with merge), the
//!   modern OpenMP-style comparison points used by our ablation benches.

pub mod inspector_executor;
pub mod shared;

pub use inspector_executor::{block_owners, IeEngine, InspectorExecutor, PreparedIe};
pub use shared::{atomic_reduction, replicated_reduction, serial_reduction};
