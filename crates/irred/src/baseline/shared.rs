//! Shared-memory irregular-reduction strategies on the host machine.
//!
//! These are the standard techniques a modern OpenMP/Kokkos programmer
//! would reach for, used by the ablation benches to put the phased
//! strategy's *native* runs in context:
//!
//! * [`serial_reduction`] — single-threaded loop (the baseline's
//!   baseline);
//! * [`atomic_reduction`] — one shared array updated with CAS loops;
//!   contention-free reads, every update pays an atomic RMW;
//! * [`replicated_reduction`] — each thread accumulates into a private
//!   copy, then the copies are merged in parallel; no atomics in the hot
//!   loop, `O(threads · n)` extra memory and a merge pass.
//!
//! All three compute the same values as [`crate::seq::seq_reduction`]
//! restricted to kernels without read-state updates (asserted).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::kernel::EdgeKernel;
use crate::phased::PhasedSpec;

fn run_kernel_range<K: EdgeKernel>(
    spec: &PhasedSpec<K>,
    range: std::ops::Range<usize>,
    mut sink: impl FnMut(usize, f64),
) {
    let m = spec.kernel.num_refs();
    let r_arrays = spec.kernel.num_arrays();
    assert_eq!(r_arrays, 1, "shared baselines support single-array groups");
    let mut out = vec![0.0f64; m];
    let mut elems = vec![0u32; m];
    let read: Vec<f64> = spec.kernel.init_read();
    for i in range {
        for (r, e) in elems.iter_mut().enumerate() {
            *e = spec.indirection[r][i];
        }
        out.fill(0.0);
        spec.kernel.contrib(&read, i, &elems, &mut out);
        for (r, &e) in elems.iter().enumerate() {
            sink(e as usize, out[r]);
        }
    }
}

/// Single-threaded reference; returns `(x, wall)`.
pub fn serial_reduction<K: EdgeKernel>(
    spec: &PhasedSpec<K>,
    sweeps: usize,
) -> (Vec<f64>, Duration) {
    assert!(!spec.kernel.updates_read_state());
    let n = spec.num_elements;
    let e = spec.num_iterations();
    let mut x = vec![0.0f64; n];
    let start = Instant::now();
    for _ in 0..sweeps {
        x.fill(0.0);
        run_kernel_range(spec, 0..e, |el, v| x[el] += v);
    }
    (x, start.elapsed())
}

/// CAS-based shared-array reduction on `threads` host threads.
pub fn atomic_reduction<K: EdgeKernel>(
    spec: &PhasedSpec<K>,
    threads: usize,
    sweeps: usize,
) -> (Vec<f64>, Duration) {
    assert!(!spec.kernel.updates_read_state());
    assert!(threads >= 1);
    let n = spec.num_elements;
    let e = spec.num_iterations();
    let x: Arc<Vec<AtomicU64>> = Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
    let start = Instant::now();
    for _ in 0..sweeps {
        for a in x.iter() {
            a.store(0f64.to_bits(), Ordering::Relaxed);
        }
        std::thread::scope(|scope| {
            for t in 0..threads {
                let x = Arc::clone(&x);
                let lo = e * t / threads;
                let hi = e * (t + 1) / threads;
                scope.spawn(move || {
                    run_kernel_range(spec, lo..hi, |el, v| {
                        let cell = &x[el];
                        let mut cur = cell.load(Ordering::Relaxed);
                        loop {
                            let new = (f64::from_bits(cur) + v).to_bits();
                            match cell.compare_exchange_weak(
                                cur,
                                new,
                                Ordering::Relaxed,
                                Ordering::Relaxed,
                            ) {
                                Ok(_) => break,
                                Err(seen) => cur = seen,
                            }
                        }
                    });
                });
            }
        });
    }
    let wall = start.elapsed();
    let out = x
        .iter()
        .map(|a| f64::from_bits(a.load(Ordering::Relaxed)))
        .collect();
    (out, wall)
}

/// Replication-based reduction: private arrays merged after each sweep.
pub fn replicated_reduction<K: EdgeKernel>(
    spec: &PhasedSpec<K>,
    threads: usize,
    sweeps: usize,
) -> (Vec<f64>, Duration) {
    assert!(!spec.kernel.updates_read_state());
    assert!(threads >= 1);
    let n = spec.num_elements;
    let e = spec.num_iterations();
    let mut x = vec![0.0f64; n];
    let start = Instant::now();
    for _ in 0..sweeps {
        let mut privates: Vec<Vec<f64>> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let lo = e * t / threads;
                    let hi = e * (t + 1) / threads;
                    scope.spawn(move || {
                        let mut mine = vec![0.0f64; n];
                        run_kernel_range(spec, lo..hi, |el, v| mine[el] += v);
                        mine
                    })
                })
                .collect();
            for h in handles {
                privates.push(h.join().expect("worker panicked"));
            }
        });
        x.fill(0.0);
        for p in &privates {
            for (xa, pa) in x.iter_mut().zip(p) {
                *xa += pa;
            }
        }
    }
    (x, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::WeightedPairKernel;

    fn spec(n: usize, e: usize, seed: u64) -> PhasedSpec<WeightedPairKernel> {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        PhasedSpec {
            kernel: Arc::new(WeightedPairKernel {
                weights: Arc::new((0..e).map(|_| (next() % 100) as f64).collect()),
            }),
            num_elements: n,
            indirection: Arc::new(vec![
                (0..e).map(|_| (next() % n as u64) as u32).collect(),
                (0..e).map(|_| (next() % n as u64) as u32).collect(),
            ]),
        }
    }

    #[test]
    fn all_strategies_agree() {
        let s = spec(128, 2_000, 3);
        let (serial, _) = serial_reduction(&s, 2);
        let (atomic, _) = atomic_reduction(&s, 4, 2);
        let (repl, _) = replicated_reduction(&s, 4, 2);
        assert!(crate::approx_eq(&serial, &atomic, 1e-9));
        assert!(crate::approx_eq(&serial, &repl, 1e-9));
    }

    #[test]
    fn single_thread_degenerate() {
        let s = spec(32, 100, 5);
        let (serial, _) = serial_reduction(&s, 1);
        let (atomic, _) = atomic_reduction(&s, 1, 1);
        assert!(crate::approx_eq(&serial, &atomic, 1e-12));
    }
}
