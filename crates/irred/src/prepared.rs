//! The prepared-run support layer: buffer pooling and cross-execute
//! cost caching, so steady-state `execute` calls neither allocate nor
//! re-meter.
//!
//! A [`Workspace`] is deliberately separate from the prepared runs that
//! use it: prepared plans are immutable structure, the workspace is
//! scratch. One workspace can serve many prepared runs (buffers are
//! pooled by size-agnostic recycling; costs are keyed by plan identity).

use std::collections::HashMap;

/// Identity of one prepared plan, including its mutation version.
/// Incremental updates bump the version, which invalidates any phase
/// costs cached for the old plan — the access pattern changed, so the
/// measured cycles no longer apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanToken {
    id: u64,
    version: u64,
}

impl PlanToken {
    /// A fresh, process-unique token at version 0.
    pub(crate) fn fresh() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(1);
        PlanToken {
            id: NEXT.fetch_add(1, Ordering::Relaxed),
            version: 0,
        }
    }

    /// Invalidate cached costs after a plan mutation.
    pub(crate) fn bump(&mut self) {
        self.version += 1;
    }

    pub fn version(&self) -> u64 {
        self.version
    }
}

/// Per-node, per-phase measured loop costs, as harvested from node
/// states after a simulated execute (`None` = not yet measured).
pub(crate) type PhaseCosts = Vec<Vec<Option<u64>>>;

/// Pools per-node buffers and caches measured phase costs across
/// executes. Checked-out buffers are always zeroed; returned buffers
/// keep their capacity, so a steady-state loop of identically shaped
/// executes performs no heap allocation for node arrays.
#[derive(Debug, Default)]
pub struct Workspace {
    pool: Vec<Vec<f64>>,
    /// Plan id → (version, costs). A stale version is overwritten on
    /// store and ignored on lookup.
    costs: HashMap<u64, (u64, PhaseCosts)>,
}

/// Cap on pooled buffers: enough for every node array of a large run,
/// small enough that a workspace never hoards unbounded memory.
const MAX_POOLED: usize = 256;

impl Workspace {
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Check out a zeroed buffer of length `len`, reusing pooled
    /// capacity when available.
    pub(crate) fn take_buffer(&mut self, len: usize) -> Vec<f64> {
        match self.pool.pop() {
            Some(mut b) => {
                b.clear();
                b.resize(len, 0.0);
                b
            }
            None => vec![0.0; len],
        }
    }

    /// Return a buffer to the pool.
    pub(crate) fn put_buffer(&mut self, b: Vec<f64>) {
        if self.pool.len() < MAX_POOLED && b.capacity() > 0 {
            self.pool.push(b);
        }
    }

    /// Measured costs for `token`, if an execute of the same plan
    /// version stored them.
    pub(crate) fn costs_for(&self, token: PlanToken) -> Option<&PhaseCosts> {
        match self.costs.get(&token.id) {
            Some((v, c)) if *v == token.version => Some(c),
            _ => None,
        }
    }

    /// Store measured costs for `token`, superseding any older version.
    pub(crate) fn store_costs(&mut self, token: PlanToken, costs: PhaseCosts) {
        self.costs.insert(token.id, (token.version, costs));
    }

    /// Number of buffers currently pooled (introspection for tests).
    pub fn pooled_buffers(&self) -> usize {
        self.pool.len()
    }

    /// Whether any phase costs are cached (introspection for tests).
    pub fn has_cached_costs(&self) -> bool {
        !self.costs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_recycle_capacity() {
        let mut ws = Workspace::new();
        let mut b = ws.take_buffer(100);
        b[3] = 42.0;
        let cap = b.capacity();
        ws.put_buffer(b);
        assert_eq!(ws.pooled_buffers(), 1);
        let b2 = ws.take_buffer(80);
        assert_eq!(ws.pooled_buffers(), 0);
        assert!(b2.capacity() >= cap.min(80));
        assert!(b2.iter().all(|&v| v == 0.0), "checked-out buffer is zeroed");
    }

    #[test]
    fn costs_keyed_by_version() {
        let mut ws = Workspace::new();
        let mut tok = PlanToken::fresh();
        ws.store_costs(tok, vec![vec![Some(7)]]);
        assert!(ws.costs_for(tok).is_some());
        tok.bump();
        assert!(
            ws.costs_for(tok).is_none(),
            "bumped version invalidates cache"
        );
        ws.store_costs(tok, vec![vec![Some(9)]]);
        assert_eq!(ws.costs_for(tok).unwrap()[0][0], Some(9));
    }

    #[test]
    fn tokens_are_unique() {
        assert_ne!(PlanToken::fresh(), PlanToken::fresh());
    }
}
