//! Strategy configuration: the `(P, k, distribution)` triple plus sweep
//! count — the paper's `1c`, `2c`, `4c`, `2b` naming (§5.4.1).

use workloads::Distribution;

/// Why a strategy configuration is rejected. Every field of
/// [`StrategyConfig`] must be at least 1: zero processors or zero phases
/// describe no machine, and zero sweeps describe no work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyError {
    ZeroProcs,
    ZeroK,
    ZeroSweeps,
}

impl std::fmt::Display for StrategyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StrategyError::ZeroProcs => write!(f, "strategy needs at least 1 processor"),
            StrategyError::ZeroK => write!(f, "strategy needs k >= 1"),
            StrategyError::ZeroSweeps => write!(f, "strategy needs at least 1 sweep"),
        }
    }
}

impl std::error::Error for StrategyError {}

/// How the phased executor's unmetered inner loops walk the inspector
/// schedule. Both layouts perform the identical float operations in the
/// identical order — results are bit-for-bit the same; the knob only
/// trades loop structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoopLayout {
    /// Stream the flattened CSR-style schedule (iter-major interleaved
    /// refs, concatenated copy ops): contiguous reads, no per-reference
    /// column hopping. The fast path, on by default.
    #[default]
    Flat,
    /// Walk the nested per-phase plan structures, exactly as the metered
    /// (simulated) sweep does. Kept for A/B comparison and validation.
    Nested,
}

/// One point in the paper's strategy space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrategyConfig {
    /// Number of processors (EARTH nodes).
    pub procs: usize,
    /// The overlap parameter: `k·P` phases per sweep.
    pub k: usize,
    /// Iteration/data distribution.
    pub distribution: Distribution,
    /// Time-step iterations (the paper uses 100 for euler/moldyn).
    pub sweeps: usize,
    /// Inner-loop layout for unmetered execution (native / sim replay).
    pub layout: LoopLayout,
}

impl StrategyConfig {
    /// Validating constructor with a typed error.
    pub fn try_new(
        procs: usize,
        k: usize,
        distribution: Distribution,
        sweeps: usize,
    ) -> Result<Self, StrategyError> {
        if procs < 1 {
            return Err(StrategyError::ZeroProcs);
        }
        if k < 1 {
            return Err(StrategyError::ZeroK);
        }
        if sweeps < 1 {
            return Err(StrategyError::ZeroSweeps);
        }
        Ok(StrategyConfig {
            procs,
            k,
            distribution,
            sweeps,
            layout: LoopLayout::default(),
        })
    }

    /// Select the inner-loop layout (builder style).
    pub fn with_layout(mut self, layout: LoopLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Panicking wrapper around [`Self::try_new`] for static strategies.
    pub fn new(procs: usize, k: usize, distribution: Distribution, sweeps: usize) -> Self {
        Self::try_new(procs, k, distribution, sweeps)
            .unwrap_or_else(|e| panic!("invalid strategy: {e}"))
    }

    /// The paper's label for this strategy: `"2c"`, `"4c"`, `"2b"`, …
    pub fn label(&self) -> String {
        format!("{}{}", self.k, self.distribution.label())
    }

    /// Phases per sweep.
    pub fn phases_per_sweep(&self) -> usize {
        self.k * self.procs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(
            StrategyConfig::new(32, 2, Distribution::Cyclic, 100).label(),
            "2c"
        );
        assert_eq!(
            StrategyConfig::new(8, 4, Distribution::Block, 100).label(),
            "4b"
        );
    }

    #[test]
    fn phases_per_sweep() {
        let s = StrategyConfig::new(4, 2, Distribution::Cyclic, 10);
        assert_eq!(s.phases_per_sweep(), 8);
    }

    #[test]
    fn try_new_rejects_zeroes() {
        assert_eq!(
            StrategyConfig::try_new(0, 2, Distribution::Block, 1),
            Err(StrategyError::ZeroProcs)
        );
        assert_eq!(
            StrategyConfig::try_new(2, 0, Distribution::Block, 1),
            Err(StrategyError::ZeroK)
        );
        assert_eq!(
            StrategyConfig::try_new(2, 2, Distribution::Block, 0),
            Err(StrategyError::ZeroSweeps)
        );
        assert!(StrategyConfig::try_new(1, 1, Distribution::Cyclic, 1).is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid strategy")]
    fn new_panics_on_zero() {
        let _ = StrategyConfig::new(0, 1, Distribution::Block, 1);
    }
}
