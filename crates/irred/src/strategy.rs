//! Strategy configuration: the `(P, k, distribution)` triple plus sweep
//! count — the paper's `1c`, `2c`, `4c`, `2b` naming (§5.4.1) — and the
//! statistics-driven choice between the rotating-portions strategy and
//! the classic inspector/executor.

use lightinspector::PlanStats;
use workloads::Distribution;

use crate::tuning::{SimdMode, TileChoice, Tuning};

/// Why a strategy configuration is rejected. Every field of
/// [`StrategyConfig`] must be at least 1: zero processors or zero phases
/// describe no machine, and zero sweeps describe no work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyError {
    ZeroProcs,
    ZeroK,
    ZeroSweeps,
}

impl std::fmt::Display for StrategyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StrategyError::ZeroProcs => write!(f, "strategy needs at least 1 processor"),
            StrategyError::ZeroK => write!(f, "strategy needs k >= 1"),
            StrategyError::ZeroSweeps => write!(f, "strategy needs at least 1 sweep"),
        }
    }
}

impl std::error::Error for StrategyError {}

/// How the phased executor's unmetered inner loops walk the inspector
/// schedule. Both layouts perform the identical float operations in the
/// identical order — results are bit-for-bit the same; the knob only
/// trades loop structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoopLayout {
    /// Stream the flattened CSR-style schedule (iter-major interleaved
    /// refs, concatenated copy ops): contiguous reads, no per-reference
    /// column hopping. The fast path, on by default.
    #[default]
    Flat,
    /// Walk the nested per-phase plan structures, exactly as the metered
    /// (simulated) sweep does. Kept for A/B comparison and validation.
    Nested,
}

/// One point in the paper's strategy space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrategyConfig {
    /// Number of processors (EARTH nodes).
    pub procs: usize,
    /// The overlap parameter: `k·P` phases per sweep.
    pub k: usize,
    /// Iteration/data distribution.
    pub distribution: Distribution,
    /// Time-step iterations (the paper uses 100 for euler/moldyn).
    pub sweeps: usize,
    /// Inner-loop layout for unmetered execution (native / sim replay).
    ///
    /// Superseded by [`Tuning::layout`] (set through
    /// `ExecutionConfig::with_tuning`); kept as storage for one
    /// deprecation window. The nested layout wins if either side
    /// requests it.
    pub layout: LoopLayout,
}

impl StrategyConfig {
    /// Validating constructor with a typed error.
    pub fn try_new(
        procs: usize,
        k: usize,
        distribution: Distribution,
        sweeps: usize,
    ) -> Result<Self, StrategyError> {
        if procs < 1 {
            return Err(StrategyError::ZeroProcs);
        }
        if k < 1 {
            return Err(StrategyError::ZeroK);
        }
        if sweeps < 1 {
            return Err(StrategyError::ZeroSweeps);
        }
        Ok(StrategyConfig {
            procs,
            k,
            distribution,
            sweeps,
            layout: LoopLayout::default(),
        })
    }

    /// Select the inner-loop layout (builder style).
    #[deprecated(
        since = "0.9.0",
        note = "layout is a Tuning knob: use ExecutionConfig::with_tuning(Tuning::new().layout(..))"
    )]
    pub fn with_layout(mut self, layout: LoopLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Panicking wrapper around [`Self::try_new`] for static strategies.
    pub fn new(procs: usize, k: usize, distribution: Distribution, sweeps: usize) -> Self {
        Self::try_new(procs, k, distribution, sweeps)
            .unwrap_or_else(|e| panic!("invalid strategy: {e}"))
    }

    /// The paper's label for this strategy: `"2c"`, `"4c"`, `"2b"`, …
    pub fn label(&self) -> String {
        format!("{}{}", self.k, self.distribution.label())
    }

    /// Phases per sweep.
    pub fn phases_per_sweep(&self) -> usize {
        self.k * self.procs
    }

    /// Pick the execution strategy from the reference stream's
    /// portion-space statistics (see [`lightinspector::portion_stats`]
    /// and `DESIGN.md` §12).
    ///
    /// The model compares modeled cycles for one *adaptation*: a
    /// (re-)preparation plus one sweep — the regime these statistics
    /// describe (fresh minibatch index sets, particle churn, adaptive
    /// frontiers), where preprocessing cannot amortize across sweeps.
    ///
    /// * **Rotating portions** executes an iteration in the phase where
    ///   its first reference is resident, so per-sweep time follows the
    ///   *hottest portion*: [`Self::PHASED_REF_CYCLES`] per reference of
    ///   `max(total_refs / P, max_portion_refs)` (the per-iteration
    ///   EARTH-C threading overhead is what makes this constant large).
    ///   Re-preparation is a LightInspector linear pass
    ///   ([`Self::PREP_REF_CYCLES`] per local reference).
    /// * **Inspector/executor** runs a lean executor loop
    ///   ([`Self::IE_REF_CYCLES`] per balanced reference) and pays ghost
    ///   traffic per *distinct* element referenced across an ownership
    ///   boundary ([`Self::GHOST_COST`] cycles per combined entry), but
    ///   must re-run its communicating inspector
    ///   ([`Self::INSPECT_REF_CYCLES`] per reference) and re-partition
    ///   (`14·d·log₂d + 22·(d + total_refs)` cycles, the
    ///   `partitioning_cycles` model) every time the indirection moves.
    ///
    /// Flat streams (skew ≈ 1) keep rotating portions: the hottest
    /// portion is no worse than balanced, while the IE pre-pass scales
    /// with the full data volume. Hot-key streams (few distinct
    /// elements, one scorching portion) switch to the
    /// inspector/executor: its ghost set and partitioning input collapse
    /// while the rotating ring degrades toward serial execution. Shapes
    /// the IE baseline cannot run (more than 64 processors; its scatter
    /// keying limit) always select rotating portions.
    ///
    /// The returned [`AutoTuning`] pairs the engine choice with a full
    /// [`Tuning`]: flat layout, the fastest SIMD mode this build
    /// honours, and — for rotating portions, whose per-phase portion
    /// working set is the locality hook — memory-model-predicted tiling
    /// ([`TileChoice::Auto`], which switches itself off at prepare time
    /// when a portion already fits the modeled cache). The IE executor
    /// walks owner-partitioned data in index order and gets no tiling.
    pub fn auto_select(&self, stats: &PlanStats) -> AutoTuning {
        let engine = self.select_engine(stats);
        let tile = match engine {
            EngineChoice::RotatingPortions => TileChoice::Auto,
            EngineChoice::InspectorExecutor => TileChoice::Off,
        };
        AutoTuning {
            engine,
            tuning: Tuning {
                layout: LoopLayout::Flat,
                simd: SimdMode::preferred(),
                tile,
                host_threads: None,
            },
        }
    }

    fn select_engine(&self, stats: &PlanStats) -> EngineChoice {
        if self.procs <= 1 || self.procs > 64 {
            return EngineChoice::RotatingPortions;
        }
        let p = self.procs as f64;
        let total = stats.total_refs as f64;
        let balanced = total / p;
        let phased_cost = Self::PHASED_REF_CYCLES * balanced.max(stats.max_portion_refs as f64)
            + Self::PREP_REF_CYCLES * balanced;
        let d = (stats.distinct_elements as f64).max(2.0);
        let ghost_per_proc = (d * (p - 1.0)).min(total) / p;
        let ie_cost = Self::IE_REF_CYCLES * balanced
            + Self::GHOST_COST * ghost_per_proc
            + Self::INSPECT_REF_CYCLES * balanced
            + 14.0 * d * d.log2()
            + 22.0 * (d + total);
        if ie_cost < phased_cost {
            EngineChoice::InspectorExecutor
        } else {
            EngineChoice::RotatingPortions
        }
    }

    /// Modeled cycles per reference on the phased executor's critical
    /// path: the ~50-cycle per-iteration EARTH-C threading overhead plus
    /// kernel and memory costs, calibrated against the simulator on the
    /// skew sweep (`bench_workloads`; see `EXPERIMENTS.md`).
    pub const PHASED_REF_CYCLES: f64 = 90.0;
    /// Modeled cycles per local reference of a LightInspector
    /// (re-)preparation pass.
    pub const PREP_REF_CYCLES: f64 = 6.0;
    /// Modeled cycles per balanced reference of the IE executor loop
    /// (no threading overhead: a plain compiled loop).
    pub const IE_REF_CYCLES: f64 = 16.0;
    /// Modeled cycles per ghost entry (8 payload bytes on the link +
    /// the 6-cycle fold add the IE simulator charges).
    pub const GHOST_COST: f64 = 14.0;
    /// Modeled cycles per reference of the IE communicating inspector
    /// (hash translation), matching the simulator's charge.
    pub const INSPECT_REF_CYCLES: f64 = 12.0;
}

/// What [`StrategyConfig::auto_select`] returns: the engine choice plus
/// a full [`Tuning`] recommendation derived from the same statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AutoTuning {
    /// Which executor the cost model picked.
    pub engine: EngineChoice,
    /// The recommended tuning bundle — hand it to
    /// `ExecutionConfig::with_tuning`.
    pub tuning: Tuning,
}

/// Which executor [`StrategyConfig::auto_select`] picks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineChoice {
    /// The paper's phased rotating-portions strategy ([`crate::PhasedEngine`]).
    RotatingPortions,
    /// The classic communicating inspector/executor
    /// ([`crate::baseline::IeEngine`]).
    InspectorExecutor,
}

impl EngineChoice {
    /// Short label used in figures and JSON reports.
    pub fn label(&self) -> &'static str {
        match self {
            EngineChoice::RotatingPortions => "phased",
            EngineChoice::InspectorExecutor => "ie",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(
            StrategyConfig::new(32, 2, Distribution::Cyclic, 100).label(),
            "2c"
        );
        assert_eq!(
            StrategyConfig::new(8, 4, Distribution::Block, 100).label(),
            "4b"
        );
    }

    #[test]
    fn phases_per_sweep() {
        let s = StrategyConfig::new(4, 2, Distribution::Cyclic, 10);
        assert_eq!(s.phases_per_sweep(), 8);
    }

    #[test]
    fn try_new_rejects_zeroes() {
        assert_eq!(
            StrategyConfig::try_new(0, 2, Distribution::Block, 1),
            Err(StrategyError::ZeroProcs)
        );
        assert_eq!(
            StrategyConfig::try_new(2, 0, Distribution::Block, 1),
            Err(StrategyError::ZeroK)
        );
        assert_eq!(
            StrategyConfig::try_new(2, 2, Distribution::Block, 0),
            Err(StrategyError::ZeroSweeps)
        );
        assert!(StrategyConfig::try_new(1, 1, Distribution::Cyclic, 1).is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid strategy")]
    fn new_panics_on_zero() {
        let _ = StrategyConfig::new(0, 1, Distribution::Block, 1);
    }

    fn stats(portion_refs: Vec<u64>, distinct: usize) -> PlanStats {
        let total: u64 = portion_refs.iter().sum();
        let max = portion_refs.iter().copied().max().unwrap_or(0);
        let mean = total as f64 / portion_refs.len().max(1) as f64;
        PlanStats {
            total_refs: total,
            distinct_elements: distinct,
            max_portion_refs: max,
            mean_portion_refs: mean,
            skew: if mean > 0.0 { max as f64 / mean } else { 1.0 },
            portion_refs,
        }
    }

    #[test]
    fn auto_select_keeps_phased_on_flat_streams() {
        let s = StrategyConfig::new(4, 2, Distribution::Cyclic, 1);
        // 8 balanced portions over 800 distinct elements.
        let flat = stats(vec![1_000; 8], 800);
        let auto = s.auto_select(&flat);
        assert_eq!(auto.engine, EngineChoice::RotatingPortions);
        // Phased gets the locality treatment: tiled, vectorized, flat.
        assert_eq!(auto.tuning.tile, TileChoice::Auto);
        assert_eq!(auto.tuning.layout, LoopLayout::Flat);
        assert_ne!(auto.tuning.simd, SimdMode::Scalar);
    }

    #[test]
    fn auto_select_switches_on_hot_key_streams() {
        let s = StrategyConfig::new(4, 2, Distribution::Cyclic, 1);
        // Everything lands in one portion, on 4 distinct hot keys.
        let hot = stats(vec![8_000, 0, 0, 0, 0, 0, 0, 0], 4);
        let auto = s.auto_select(&hot);
        assert_eq!(auto.engine, EngineChoice::InspectorExecutor);
        assert_eq!(auto.tuning.tile, TileChoice::Off);
    }

    #[test]
    fn auto_select_respects_ie_limits() {
        // The IE scatter keying supports at most 64 processors: beyond
        // that the choice must stay phased even for scorching skew.
        let s = StrategyConfig::new(65, 1, Distribution::Block, 1);
        let hot = stats(vec![8_000, 0, 0, 0], 4);
        assert_eq!(s.auto_select(&hot).engine, EngineChoice::RotatingPortions);
        let single = StrategyConfig::new(1, 2, Distribution::Block, 1);
        assert_eq!(
            single.auto_select(&hot).engine,
            EngineChoice::RotatingPortions
        );
    }

    #[test]
    fn choice_labels() {
        assert_eq!(EngineChoice::RotatingPortions.label(), "phased");
        assert_eq!(EngineChoice::InspectorExecutor.label(), "ie");
    }
}
