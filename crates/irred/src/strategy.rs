//! Strategy configuration: the `(P, k, distribution)` triple plus sweep
//! count — the paper's `1c`, `2c`, `4c`, `2b` naming (§5.4.1).

use workloads::Distribution;

/// One point in the paper's strategy space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrategyConfig {
    /// Number of processors (EARTH nodes).
    pub procs: usize,
    /// The overlap parameter: `k·P` phases per sweep.
    pub k: usize,
    /// Iteration/data distribution.
    pub distribution: Distribution,
    /// Time-step iterations (the paper uses 100 for euler/moldyn).
    pub sweeps: usize,
}

impl StrategyConfig {
    pub fn new(procs: usize, k: usize, distribution: Distribution, sweeps: usize) -> Self {
        assert!(procs >= 1 && k >= 1 && sweeps >= 1);
        StrategyConfig {
            procs,
            k,
            distribution,
            sweeps,
        }
    }

    /// The paper's label for this strategy: `"2c"`, `"4c"`, `"2b"`, …
    pub fn label(&self) -> String {
        format!("{}{}", self.k, self.distribution.label())
    }

    /// Phases per sweep.
    pub fn phases_per_sweep(&self) -> usize {
        self.k * self.procs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(
            StrategyConfig::new(32, 2, Distribution::Cyclic, 100).label(),
            "2c"
        );
        assert_eq!(
            StrategyConfig::new(8, 4, Distribution::Block, 100).label(),
            "4b"
        );
    }

    #[test]
    fn phases_per_sweep() {
        let s = StrategyConfig::new(4, 2, Distribution::Cyclic, 10);
        assert_eq!(s.phases_per_sweep(), 8);
    }
}
